#include "rtl/timing_model.h"

#include <algorithm>
#include <vector>

#include "base/logging.h"

namespace qec
{

namespace
{

double
opDuration(const Op &op, const GateTimings &t)
{
    switch (op.type) {
      case OpType::Cnot:
      case OpType::LeakageIswap:
        return t.cnotNs;
      case OpType::H:
        return t.hNs;
      case OpType::Measure:
      case OpType::MeasureX:
        return t.measureNs;
      case OpType::Reset:
        return t.resetNs;
      case OpType::RoundStart:
      case OpType::DataNoise:
        return 0.0;
    }
    panic("unknown op type");
}

} // namespace

double
scheduleMakespanNs(const std::vector<Op> &ops, int num_qubits,
                   const GateTimings &timings)
{
    std::vector<double> ready(num_qubits, 0.0);
    double makespan = 0.0;
    for (const auto &op : ops) {
        const double dur = opDuration(op, timings);
        if (dur == 0.0)
            continue;
        double start = ready[op.q0];
        if (op.q1 >= 0)
            start = std::max(start, ready[op.q1]);
        const double end = start + dur;
        ready[op.q0] = end;
        if (op.q1 >= 0)
            ready[op.q1] = end;
        makespan = std::max(makespan, end);
    }
    return makespan;
}

RoundTiming
analyzeRoundTiming(const RotatedSurfaceCode &code,
                   const GateTimings &timings)
{
    RoundTiming result;

    RoundSchedule plain = buildRoundSchedule(code, 0, {});
    result.roundNs = scheduleMakespanNs(plain.ops, code.numQubits(),
                                        timings);

    // Worst case: every parity qubit hosts an LRC (first-fit pairing).
    std::vector<LrcPair> pairs;
    std::vector<uint8_t> used(code.numData(), 0);
    for (const auto &stab : code.stabilizers()) {
        for (int q : stab.support) {
            if (!used[q]) {
                used[q] = 1;
                pairs.push_back({q, stab.index});
                break;
            }
        }
    }
    RoundSchedule full = buildRoundSchedule(code, 0, pairs);
    result.lrcRoundNs = scheduleMakespanNs(full.ops, code.numQubits(),
                                           timings);

    // Fig. 12: the syndrome becomes available once the previous
    // round's measurement finishes; by then the next round's CNOT
    // layers are already running. The decision must land before the
    // fourth CNOT completes. With the measurement (and reset) on the
    // critical path of the previous round, the overlap leaves exactly
    // the four CNOT layers of the upcoming round.
    result.decisionWindowNs = 4.0 * timings.cnotNs;
    return result;
}

} // namespace qec
