/**
 * @file
 * Control-timing model for the real-time constraint of Section 4.3 /
 * Fig. 12: after a syndrome bit reaches the control processor, ERASER
 * must decide whether to insert an LRC before the fourth CNOT of the
 * next round completes (the SWAP must start right after it). With
 * Sycamore-class latencies that leaves ~120 ns; the FPGA block answers
 * in ~5 ns.
 *
 * The model performs ASAP (as-soon-as-possible) scheduling of a round's
 * op list under per-gate durations and derives the decision window and
 * round duration — so the claim is checked against the actual emitted
 * circuit rather than assumed.
 */

#ifndef QEC_RTL_TIMING_MODEL_H
#define QEC_RTL_TIMING_MODEL_H

#include "code/builder.h"
#include "code/rotated_surface_code.h"

namespace qec
{

/** Gate durations in nanoseconds (defaults follow Google Sycamore's
 *  public datasheet numbers used by the paper). */
struct GateTimings
{
    double cnotNs = 30.0;
    double hNs = 15.0;
    double measureNs = 500.0;
    double resetNs = 160.0;
};

/** Timing analysis of one syndrome extraction round. */
struct RoundTiming
{
    /** End-to-end duration of a plain round. */
    double roundNs = 0.0;
    /** Duration of a round whose every stabilizer carries an LRC
     *  (the Always-LRCs worst case). */
    double lrcRoundNs = 0.0;
    /** Time from syndrome availability (end of ancilla measurement)
     *  to the completion of the 4th CNOT layer of the next round —
     *  the window in which the LRC decision must land (Fig. 12). */
    double decisionWindowNs = 0.0;
};

/**
 * ASAP-schedule the ops of a round and report its makespan.
 * @param num_qubits Total qubits (per-qubit resource model).
 */
double scheduleMakespanNs(const std::vector<Op> &ops, int num_qubits,
                          const GateTimings &timings = {});

/** Analyze the timing of rounds for one code distance. */
RoundTiming analyzeRoundTiming(const RotatedSurfaceCode &code,
                               const GateTimings &timings = {});

} // namespace qec

#endif // QEC_RTL_TIMING_MODEL_H
