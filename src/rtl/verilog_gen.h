/**
 * @file
 * SystemVerilog generator for the ERASER controller block (the
 * artifact's `eraser_rtl_gen`), plus an analytic FPGA resource model.
 *
 * The paper synthesized the generated RTL with Vivado on a Kintex
 * UltraScale+ xcku3p (Table 3: <1% LUT/FF utilization, 5 ns worst-case
 * speculation latency). Vivado is unavailable offline, so this module
 * both emits the RTL a user would synthesize and estimates utilization
 * by structural counting: the speculation comparators, LTT/PUTT
 * next-state logic and the DLI allocation network map onto 6-input
 * LUTs; every architectural state bit maps onto a flip-flop.
 */

#ifndef QEC_RTL_VERILOG_GEN_H
#define QEC_RTL_VERILOG_GEN_H

#include <string>

#include "code/rotated_surface_code.h"

namespace qec
{

/** Options for RTL generation. */
struct RtlOptions
{
    /** Include the ERASER+M multi-level |L> label inputs. */
    bool multiLevel = false;
};

/** Emit the complete SystemVerilog module for a code distance. */
std::string generateEraserRtl(const RotatedSurfaceCode &code,
                              const RtlOptions &options = {});

/** Kintex UltraScale+ xcku3p budgets (paper's evaluation part). */
struct FpgaPart
{
    const char *name = "xcku3p-ffvd900-3-e";
    int luts = 162720;
    int ffs = 325440;
    /** Per-LUT-level delay plus net budget, ns (speed grade -3). */
    double lutDelayNs = 0.35;
    double routingOverheadNs = 1.5;
};

/** Structural resource estimate of the generated design. */
struct ResourceEstimate
{
    int luts = 0;
    int ffs = 0;
    double lutPercent = 0.0;
    double ffPercent = 0.0;
    /** Combinational depth in LUT levels (prefix-tree allocation). */
    int logicLevels = 0;
    double critPathNs = 0.0;
};

/** Estimate the resources of generateEraserRtl's output. */
ResourceEstimate estimateResources(const RotatedSurfaceCode &code,
                                   const RtlOptions &options = {},
                                   const FpgaPart &part = {});

} // namespace qec

#endif // QEC_RTL_VERILOG_GEN_H
