#include "analytics/leakage_math.h"

#include <cmath>

namespace qec
{

double
pDataGivenParityLeaked(const LeakageConstants &c)
{
    // Leakage transport through the one CNOT with the leaked parity
    // qubit, plus operation-induced leakage over the four CNOTs the
    // data qubit takes part in.
    double op_leak = 0.0;
    for (int k = 1; k <= 4; ++k)
        op_leak += std::pow(1.0 - c.pLeak, k - 1) * c.pLeak;
    return c.pTransport + op_leak;
}

double
pParityGivenDataLeaked(const LeakageConstants &c)
{
    // With an LRC the parity qubit sees nine CNOTs of operation-
    // induced leakage and four transport opportunities before the data
    // qubit is reset.
    double op_leak = 0.0;
    for (int k = 1; k <= 9; ++k)
        op_leak += std::pow(1.0 - c.pLeak, k - 1) * c.pLeak;
    double transport = 0.0;
    for (int k = 1; k <= 4; ++k)
        transport += std::pow(1.0 - c.pTransport, k - 1) * c.pTransport;
    return op_leak + transport;
}

double
pInvisible(int rounds)
{
    if (rounds < 0)
        return 0.0;
    // A leaked data qubit escapes notice in one round only if none of
    // its (up to four) neighbouring checks is disturbed: (1/2)^4.
    return (15.0 / 16.0) * std::pow(1.0 / 16.0, rounds);
}

double
expectedInvisibleRounds()
{
    // Geometric distribution with success probability 15/16:
    // E[r] = (1/16) / (15/16).
    return (1.0 / 16.0) / (15.0 / 16.0);
}

} // namespace qec
