/**
 * @file
 * Closed-form leakage models from Sections 3.1 and 4.1 of the paper.
 */

#ifndef QEC_ANALYTICS_LEAKAGE_MATH_H
#define QEC_ANALYTICS_LEAKAGE_MATH_H

namespace qec
{

/** Default constants of Table 1. */
struct LeakageConstants
{
    double pLeak = 1e-4;       ///< CNOT leakage error, 0.1 * p.
    double pTransport = 0.1;   ///< CNOT leakage transport probability.
};

/**
 * Eq. (1): probability a data qubit leaks during a round without an
 * LRC, given its parity qubit is already leaked (~10%).
 */
double pDataGivenParityLeaked(const LeakageConstants &c = {});

/**
 * Eq. (2): probability a parity qubit leaks during a round with an
 * LRC, given its data qubit is already leaked (~34%).
 */
double pParityGivenDataLeaked(const LeakageConstants &c = {});

/**
 * Eq. (3): probability a leaked data qubit stays invisible to
 * syndrome extraction for exactly `rounds` rounds (Table 2).
 */
double pInvisible(int rounds);

/** Expected rounds a leaked data qubit stays invisible. */
double expectedInvisibleRounds();

} // namespace qec

#endif // QEC_ANALYTICS_LEAKAGE_MATH_H
