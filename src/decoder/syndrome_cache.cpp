#include "decoder/syndrome_cache.h"

#include <algorithm>
#include <cstring>

#include "base/fault_injection.h"

namespace qec
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

} // namespace

SyndromeCacheOptions
resolveSyndromeCacheOptions(SyndromeCacheOptions options, int rounds,
                            int basis_stabilizers)
{
    if (options.truncateRounds > 0 && options.keyDetectorLimit == 0) {
        // Clamp to at least one key row: an over-large truncateRounds
        // means "truncate as much as possible", and a cutoff of 0
        // would silently mean the opposite (exact keying).
        const int key_rows =
            std::max(1, (rounds + 1) - (int)options.truncateRounds);
        options.keyDetectorLimit =
            (uint32_t)(key_rows * basis_stabilizers);
    }
    return options;
}

SyndromeCache::SyndromeCache(SyndromeCacheOptions options)
    : options_(options)
{
    if (!options_.enabled)
        return;
    // Armed with Kind::ThrowBadAlloc, this simulates the slot-table
    // or arena allocation failing — the recoverable-allocation path
    // the SweepRunner retry tests exercise.
    (void)QEC_FAULT_POINT("cache.alloc");
    options_.tableLog2 = std::min(options_.tableLog2, 24u);
    slots_.resize(size_t{1} << options_.tableLog2);
    mask_ = slots_.size() - 1;
    arena_.reserve(options_.arenaCapacity);
}

uint64_t
SyndromeCache::truncateKey(const int *defects, size_t count)
{
    // Hash the prefix in place: entries store and verify the FULL
    // defect list, so the truncated ids never need materializing.
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < count; ++k) {
        if ((uint32_t)defects[k] < options_.keyDetectorLimit)
            h = (h ^ (uint64_t)(uint32_t)defects[k]) * kFnvPrime;
    }
    return h;
}

bool
SyndromeCache::lookup(uint64_t hash, const int *defects, size_t count,
                      bool &verdict)
{
    if (!options_.enabled) {
        ++stats_.misses;
        return false;
    }
    if (options_.keyDetectorLimit) {
        // Truncated keying hashes the prefix only, but entries store
        // the FULL defect list and a hit requires full equality below:
        // a prefix collision with a differing tail probes on (and at
        // worst misses), it can never replay the wrong verdict. The
        // approximation is miss-only — coarser hashes cluster the
        // probe chains, they never change a correction.
        lastKeyHash_ = truncateKey(defects, count);
        lastKeySrc_ = defects;
        lastKeyCount_ = count;
        lastKeyValid_ = true;
        hash = lastKeyHash_;
    }
    size_t slot = hash & mask_;
    while (slots_[slot].used) {
        const Slot &s = slots_[slot];
        if (s.hash == hash && s.count == count &&
            std::memcmp(arena_.data() + s.offset, defects,
                        count * sizeof(int)) == 0) {
            verdict = s.verdict != 0;
            ++stats_.hits;
            return true;
        }
        slot = (slot + 1) & mask_;
    }
    ++stats_.misses;
    return false;
}

void
SyndromeCache::insert(uint64_t hash, const int *defects, size_t count,
                      bool verdict)
{
    if (!options_.enabled)
        return;
    if (options_.keyDetectorLimit) {
        // Reuse the immediately preceding lookup's truncation when it
        // covered this exact list; anything else recomputes. The full
        // list is what gets stored either way — only the hash is
        // prefix-derived.
        if (lastKeyValid_ && lastKeySrc_ == defects &&
            lastKeyCount_ == count)
            hash = lastKeyHash_;
        else
            hash = truncateKey(defects, count);
        lastKeyValid_ = false;
    }
    if (count > options_.arenaCapacity)
        return;
    // Flush wholesale once either array is near capacity: the table
    // needs headroom for probing, the arena for the incoming list.
    if (used_ + 1 > slots_.size() - slots_.size() / 4 ||
        arena_.size() + count > options_.arenaCapacity) {
        stats_.lastFlush = {stats_.hits - hitsAtFlush_,
                            stats_.misses - missesAtFlush_,
                            (uint64_t)used_,
                            (double)used_ / (double)slots_.size()};
        hitsAtFlush_ = stats_.hits;
        missesAtFlush_ = stats_.misses;
        stats_.evictions += used_;
        flush();
        ++stats_.flushes;
    }
    size_t slot = hash & mask_;
    while (slots_[slot].used) {
        if (slots_[slot].hash == hash &&
            slots_[slot].count == count &&
            std::memcmp(arena_.data() + slots_[slot].offset, defects,
                        count * sizeof(int)) == 0)
            return;   // already cached (racing duplicate insert)
        slot = (slot + 1) & mask_;
    }
    Slot &s = slots_[slot];
    s.hash = hash;
    s.offset = (uint32_t)arena_.size();
    s.count = (uint32_t)count;
    s.verdict = verdict ? 1 : 0;
    s.used = 1;
    arena_.insert(arena_.end(), defects, defects + count);
    ++used_;
}

void
SyndromeCache::flush()
{
    std::fill(slots_.begin(), slots_.end(), Slot{});
    arena_.clear();
    used_ = 0;
}

} // namespace qec
