#include "decoder/syndrome_cache.h"

#include <algorithm>
#include <cstring>

namespace qec
{

SyndromeCache::SyndromeCache(SyndromeCacheOptions options)
    : options_(options)
{
    if (!options_.enabled)
        return;
    options_.tableLog2 = std::min(options_.tableLog2, 24u);
    slots_.resize(size_t{1} << options_.tableLog2);
    mask_ = slots_.size() - 1;
    arena_.reserve(options_.arenaCapacity);
}

bool
SyndromeCache::lookup(uint64_t hash, const int *defects, size_t count,
                      bool &verdict)
{
    if (!options_.enabled) {
        ++stats_.misses;
        return false;
    }
    size_t slot = hash & mask_;
    while (slots_[slot].used) {
        const Slot &s = slots_[slot];
        if (s.hash == hash && s.count == count &&
            std::memcmp(arena_.data() + s.offset, defects,
                        count * sizeof(int)) == 0) {
            verdict = s.verdict != 0;
            ++stats_.hits;
            return true;
        }
        slot = (slot + 1) & mask_;
    }
    ++stats_.misses;
    return false;
}

void
SyndromeCache::insert(uint64_t hash, const int *defects, size_t count,
                      bool verdict)
{
    if (!options_.enabled || count > options_.arenaCapacity)
        return;
    // Flush wholesale once either array is near capacity: the table
    // needs headroom for probing, the arena for the incoming list.
    if (used_ + 1 > slots_.size() - slots_.size() / 4 ||
        arena_.size() + count > options_.arenaCapacity) {
        flush();
        ++stats_.flushes;
    }
    size_t slot = hash & mask_;
    while (slots_[slot].used) {
        if (slots_[slot].hash == hash &&
            slots_[slot].count == count &&
            std::memcmp(arena_.data() + slots_[slot].offset, defects,
                        count * sizeof(int)) == 0)
            return;   // already cached (racing duplicate insert)
        slot = (slot + 1) & mask_;
    }
    Slot &s = slots_[slot];
    s.hash = hash;
    s.offset = (uint32_t)arena_.size();
    s.count = (uint32_t)count;
    s.verdict = verdict ? 1 : 0;
    s.used = 1;
    arena_.insert(arena_.end(), defects, defects + count);
    ++used_;
}

void
SyndromeCache::flush()
{
    std::fill(slots_.begin(), slots_.end(), Slot{});
    arena_.clear();
    used_ = 0;
}

} // namespace qec
