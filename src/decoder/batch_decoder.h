/**
 * @file
 * Batch-aware decode orchestration: the layer between the bit-packed
 * simulation engine and the per-shot decoders.
 *
 * For every lane of a BatchSyndrome the pipeline applies, in order:
 *
 *  1. Zero-defect fast path — no fired detectors means the decoder
 *     would predict "no flip" without looking at the graph, so the
 *     decode is skipped outright (the dominant case at low p).
 *  2. Syndrome dedup cache — identical sparse syndromes replay the
 *     first decode's observable-flip verdict (see SyndromeCache).
 *  3. Workspace decode — decodeSparse() on the wrapped decoder with
 *     this pipeline's persistent DecodeWorkspace, so steady-state
 *     decoding is allocation-free.
 *
 * One BatchDecoder per thread: the workspace and cache are mutable
 * state. Verdicts are bit-exact with per-shot Decoder::decode calls —
 * decoding is a pure function of the defect list, which the
 * differential tests pin.
 */

#ifndef QEC_DECODER_BATCH_DECODER_H
#define QEC_DECODER_BATCH_DECODER_H

#include <cstdint>

#include "decoder/decoder_base.h"
#include "decoder/sparse_syndrome.h"
#include "decoder/syndrome_cache.h"

namespace qec
{

/** Counters for one pipeline instance (mergeable across threads). */
struct BatchDecodeStats
{
    uint64_t shots = 0;          ///< Lanes fed into the pipeline.
    uint64_t zeroDefect = 0;     ///< Lanes skipped by the fast path.
    uint64_t cacheHits = 0;      ///< Lanes answered by the dedup cache.
    uint64_t decoded = 0;        ///< Lanes that ran a real decode.

    void
    merge(const BatchDecodeStats &other)
    {
        shots += other.shots;
        zeroDefect += other.zeroDefect;
        cacheHits += other.cacheHits;
        decoded += other.decoded;
    }

    /** Cache hits over cache-eligible (nonzero-defect) lanes. */
    double
    cacheHitRate() const
    {
        const uint64_t eligible = cacheHits + decoded;
        return eligible == 0 ? 0.0
                             : (double)cacheHits / (double)eligible;
    }
};

class BatchDecoder
{
  public:
    /** Wrap a decoder; the decoder must outlive the pipeline. */
    explicit BatchDecoder(const Decoder &decoder,
                          SyndromeCacheOptions cache_options = {});

    /**
     * Decode every lane of a (possibly >64-lane) word-group, writing
     * per-lane predicted-flip bits into `predictions` (at least
     * batch.numWords words; cleared first).
     */
    void decodeBatch(const BatchSyndrome &batch,
                     uint64_t *predictions);

    /** Convenience for groups of at most 64 lanes: returns the
     *  predicted-flip bits as one word (panics on wider batches
     *  rather than silently dropping lanes). */
    uint64_t decodeBatch(const BatchSyndrome &batch);

    /** Decode one sparse syndrome through the same pipeline. */
    bool decodeOne(const int *defects, size_t count);

    DecodeWorkspace & workspace() { return workspace_; }
    const BatchDecodeStats & stats() const { return stats_; }
    const SyndromeCacheStats & cacheStats() const
    {
        return cache_.stats();
    }
    void resetStats()
    {
        stats_ = {};
        cache_.resetStats();
    }

  private:
    bool decodeCached(uint64_t hash, const int *defects, size_t count);

    const Decoder &decoder_;
    DecodeWorkspace workspace_;
    SyndromeCache cache_;
    BatchDecodeStats stats_;
};

} // namespace qec

#endif // QEC_DECODER_BATCH_DECODER_H
