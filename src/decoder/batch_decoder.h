/**
 * @file
 * Batch-aware decode orchestration: the layer between the bit-packed
 * simulation engine and the per-shot decoders.
 *
 * For every lane of a BatchSyndrome the pipeline applies, in order:
 *
 *  1. Zero-defect fast path — no fired detectors means the decoder
 *     would predict "no flip" without looking at the graph, so the
 *     decode is skipped outright (the dominant case at low p).
 *  2. Syndrome dedup cache — identical sparse syndromes replay the
 *     first decode's observable-flip verdict (see SyndromeCache).
 *  3. Component-granular dispatch — when a ComponentGraph is attached
 *     and the decoder certifies composition support, the lane's
 *     defects are split into far-apart connected components; each
 *     component is answered from the exact per-component cache or
 *     decoded alone, and the lane verdict is the XOR of the component
 *     verdicts. A reach-certificate guard falls back to a whole-shot
 *     decode whenever disjointness cannot be certified, so verdicts
 *     stay bit-identical to the uncached path (see component_decoder.h
 *     for the exactness contract).
 *  4. Workspace decode — decodeSparse() on the wrapped decoder with
 *     this pipeline's persistent DecodeWorkspace, so steady-state
 *     decoding is allocation-free.
 *
 * Sliding-window streaming mode (opt-in via BatchDecodeOptions
 * windowLength / windowSlideLength): instead of one whole-history
 * decode per lane, the lane's rounds are decoded in windows of
 * `windowLength` detector rows advanced `windowSlideLength` rows at a
 * time, with cluster-complete commits: each window decodes its fresh
 * defects plus every deferred cluster, then commits whole grown
 * clusters whose regions are provably beyond the decoder's certified
 * growth bound (Decoder::windowCommitBound) from every unseen row and
 * every deferred defect — such a cluster is exactly a full-history
 * cluster by the same disjoint-evolution argument the component stage
 * uses, so its observable parity is committed for good. Clusters that
 * cannot be certified are deferred (their defects carried verbatim)
 * and the final window commits unconditionally. Windowed verdicts are
 * therefore bit-identical to the full-history decode for EVERY defect
 * set and window shape; the window sizing only trades the deferral
 * rate against peak decoder state, which is bounded by the window
 * content plus deferrals rather than the run length. A decoder
 * without a certified growth bound (MWPM) defers everything — still
 * exact, but degenerating to one full-history decode per lane.
 *
 * One BatchDecoder per thread: the workspace and caches are mutable
 * state. Non-windowed verdicts are bit-exact with per-shot
 * Decoder::decode calls — decoding is a pure function of the defect
 * list, which the differential tests pin.
 */

#ifndef QEC_DECODER_BATCH_DECODER_H
#define QEC_DECODER_BATCH_DECODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "decoder/component_decoder.h"
#include "decoder/decoder_base.h"
#include "decoder/sparse_syndrome.h"
#include "decoder/syndrome_cache.h"

namespace qec
{

/** Full pipeline configuration (one per BatchDecoder). */
struct BatchDecodeOptions
{
    SyndromeCacheOptions cache;
    ComponentDecodeOptions components;
    /**
     * Sliding-window streaming decode: decode each lane in windows of
     * this many detector rows (0 = whole-history decode). Requires an
     * attached ComponentGraph for the row geometry. Ignored when the
     * window covers the whole history.
     */
    int windowLength = 0;
    /** Rows the window advances per step (1 .. windowLength). */
    int windowSlideLength = 0;
};

/** Counters for one pipeline instance (mergeable across threads). */
struct BatchDecodeStats
{
    uint64_t shots = 0;          ///< Lanes fed into the pipeline.
    uint64_t zeroDefect = 0;     ///< Lanes skipped by the fast path.
    uint64_t cacheHits = 0;      ///< Lanes answered by the dedup cache.
    uint64_t decoded = 0;        ///< Lanes that went past both caches.

    // Component-granular dispatch (subset of `decoded` lanes).
    uint64_t componentLanes = 0;     ///< Lanes split into components.
    uint64_t componentsTotal = 0;    ///< Components those splits made.
    uint64_t componentCacheHits = 0; ///< Components replayed from cache.
    uint64_t componentsDecoded = 0;  ///< Components decoded for real.
    /** Component groups merged (and re-decoded merged) because the
     *  reach-certificate guard could not prove them apart. */
    uint64_t guardFallbacks = 0;

    // Sliding-window streaming mode.
    uint64_t windows = 0;          ///< Non-empty windows decoded.
    uint64_t windowCommits = 0;    ///< Clusters committed early/final.
    uint64_t windowDeferrals = 0;  ///< Clusters deferred to later
                                   ///< windows (uncertified commits).
    /** Most defects any single window decode was handed — the peak
     *  live decoder state of a streaming run (vs the whole shot's
     *  defect count for a full-history decode). */
    uint64_t windowPeakDefects = 0;

    void
    merge(const BatchDecodeStats &other)
    {
        shots += other.shots;
        zeroDefect += other.zeroDefect;
        cacheHits += other.cacheHits;
        decoded += other.decoded;
        componentLanes += other.componentLanes;
        componentsTotal += other.componentsTotal;
        componentCacheHits += other.componentCacheHits;
        componentsDecoded += other.componentsDecoded;
        guardFallbacks += other.guardFallbacks;
        windows += other.windows;
        windowCommits += other.windowCommits;
        windowDeferrals += other.windowDeferrals;
        if (other.windowPeakDefects > windowPeakDefects)
            windowPeakDefects = other.windowPeakDefects;
    }

    /** Cache hits over cache-eligible (nonzero-defect) lanes. */
    double
    cacheHitRate() const
    {
        const uint64_t eligible = cacheHits + decoded;
        return eligible == 0 ? 0.0
                             : (double)cacheHits / (double)eligible;
    }

    /** Component-cache hits over all components dispatched. */
    double
    componentCacheHitRate() const
    {
        const uint64_t total = componentCacheHits + componentsDecoded;
        return total == 0 ? 0.0
                          : (double)componentCacheHits / (double)total;
    }
};

class BatchDecoder
{
  public:
    /** Wrap a decoder; the decoder must outlive the pipeline.
     *  Legacy form: dedup cache only, no component dispatch. */
    explicit BatchDecoder(const Decoder &decoder,
                          SyndromeCacheOptions cache_options = {});

    /**
     * Full pipeline: dedup cache + component-granular dispatch (+
     * sliding-window mode when configured). `graph` may be null,
     * which disables the component and window stages; it must
     * otherwise be built from the same DetectorModel and error rate
     * as `decoder` and outlive the pipeline (shared across threads).
     */
    BatchDecoder(const Decoder &decoder,
                 const BatchDecodeOptions &options,
                 std::shared_ptr<const ComponentGraph> graph);

    /**
     * Decode every lane of a (possibly >64-lane) word-group, writing
     * per-lane predicted-flip bits into `predictions` (at least
     * batch.numWords words; cleared first).
     */
    void decodeBatch(const BatchSyndrome &batch,
                     uint64_t *predictions);

    /** Convenience for groups of at most 64 lanes: returns the
     *  predicted-flip bits as one word (panics on wider batches
     *  rather than silently dropping lanes). */
    uint64_t decodeBatch(const BatchSyndrome &batch);

    /** Decode one sparse syndrome through the same pipeline. */
    bool decodeOne(const int *defects, size_t count);

    DecodeWorkspace & workspace() { return workspace_; }
    const BatchDecodeStats & stats() const { return stats_; }
    const SyndromeCacheStats & cacheStats() const
    {
        return cache_.stats();
    }
    const ComponentCacheStats & componentCacheStats() const
    {
        return componentCache_.stats();
    }
    bool windowed() const { return windowed_; }
    void resetStats()
    {
        stats_ = {};
        cache_.resetStats();
        componentCache_.resetStats();
    }

  private:
    bool decodeCached(uint64_t hash, const int *defects, size_t count);
    /** Post-cache lane decode: windowed / component / plain. */
    bool decodeLane(const int *defects, size_t count);
    bool decodeComponents(const int *defects, size_t count,
                          int shot_slack);
    bool decodeWindowed(const int *defects, size_t count);

    const Decoder &decoder_;
    BatchDecodeOptions options_;
    std::shared_ptr<const ComponentGraph> graph_;
    bool windowed_ = false;
    DecodeWorkspace workspace_;
    SyndromeCache cache_;
    ComponentCache componentCache_;
    BatchDecodeStats stats_;
    // Sliding-window scratch (steady-state allocation-free).
    std::vector<int> winDefects_;     ///< Current window's decode input.
    std::vector<uint8_t> winDone_;    ///< Per-input-defect committed flag.
    std::vector<uint8_t> winCommit_;  ///< Per-cluster commit flags.
};

} // namespace qec

#endif // QEC_DECODER_BATCH_DECODER_H
