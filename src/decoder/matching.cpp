#include "decoder/matching.h"

#include <algorithm>
#include <cassert>
#include <type_traits>

#include "base/logging.h"

namespace qec
{

namespace
{

/** Grow a nested vector's outer size (never shrinking, so inner
 *  capacity persists) and clear the first `n` inner vectors. */
void
resetNested(std::vector<std::vector<int>> &v, size_t n)
{
    if (v.size() < n)
        v.resize(n);
    for (size_t i = 0; i < n; ++i)
        v[i].clear();
}

/**
 * State of one maximum-weight-matching computation. A direct port of
 * Van Rantwijk's formulation of Galil's algorithm: vertices are
 * 0..n-1, blossoms n..2n-1, and "endpoints" are directed half-edges
 * (edge k has endpoints 2k and 2k+1). All arrays live in the caller's
 * MatcherScratch, so repeated solves on same-shaped instances are
 * allocation-free.
 */
class Matcher
{
  public:
    Matcher(int n, const std::vector<MatchEdge> &edges, bool maxcard,
            MatcherScratch &s)
        : n_(n), edges_(edges), maxCardinality_(maxcard),
          neighbend_(s.neighbend), mate_(s.mate), label_(s.label),
          labelend_(s.labelend), inblossom_(s.inblossom),
          blossomparent_(s.blossomparent),
          blossomchilds_(s.blossomchilds),
          blossombase_(s.blossombase), blossomendps_(s.blossomendps),
          bestedge_(s.bestedge),
          blossombestedges_(s.blossombestedges),
          unusedblossoms_(s.unusedblossoms), dualvar_(s.dualvar),
          allowedge_(s.allowedge), queue_(s.queue),
          leafStack_(s.leafStack), pathBuf_(s.pathBuf),
          endpsBuf_(s.endpsBuf), bestEdgeToBuf_(s.bestEdgeToBuf),
          expandPool_(s.expandPool)
    {
    }

    void solve(std::vector<int> &partner);

  private:
    int64_t
    slack(int k) const
    {
        const auto &e = edges_[k];
        return dualvar_[e.u] + dualvar_[e.v] - 2 * e.weight;
    }

    int endpoint(int p) const
    {
        return (p & 1) ? edges_[p >> 1].v : edges_[p >> 1].u;
    }

    void assignLabel(int w, int t, int p);
    int scanBlossom(int v, int w);
    void addBlossom(int base, int k);
    void expandBlossom(int b, bool endstage);
    void augmentBlossom(int b, int v);
    void augmentMatching(int k);

    int n_;
    const std::vector<MatchEdge> &edges_;
    bool maxCardinality_;

    // All state lives in the caller's MatcherScratch (see matching.h);
    // these references keep the algorithm text unchanged.
    std::vector<std::vector<int>> &neighbend_;
    std::vector<int> &mate_;
    std::vector<int> &label_;
    std::vector<int> &labelend_;
    std::vector<int> &inblossom_;
    std::vector<int> &blossomparent_;
    std::vector<std::vector<int>> &blossomchilds_;
    std::vector<int> &blossombase_;
    std::vector<std::vector<int>> &blossomendps_;
    std::vector<int> &bestedge_;
    std::vector<std::vector<int>> &blossombestedges_;
    std::vector<int> &unusedblossoms_;
    std::vector<int64_t> &dualvar_;
    std::vector<uint8_t> &allowedge_;
    std::vector<int> &queue_;

    // Reusable scratch for the hot helpers (no allocation per blossom
    // operation once warmed up).
    std::vector<int> &leafStack_;
    std::vector<int> &pathBuf_;
    std::vector<int> &endpsBuf_;
    std::vector<int> &bestEdgeToBuf_;
    std::vector<std::vector<int>> &expandPool_;
    int expandDepth_ = 0;

    /** Apply f to every leaf vertex of (sub-)blossom b, in the same
     *  order as the recursive formulation. Not reentrant: callers
     *  must finish one traversal before starting another. */
    template <typename F>
    void
    forEachLeaf(int b, F &&f)
    {
        leafStack_.clear();
        leafStack_.push_back(b);
        while (!leafStack_.empty()) {
            const int t = leafStack_.back();
            leafStack_.pop_back();
            if (t < n_) {
                f(t);
                continue;
            }
            const auto &childs = blossomchilds_[t];
            for (auto it = childs.rbegin(); it != childs.rend(); ++it)
                leafStack_.push_back(*it);
        }
    }
};

void
Matcher::assignLabel(int w, int t, int p)
{
    const int b = inblossom_[w];
    label_[w] = label_[b] = t;
    labelend_[w] = labelend_[b] = p;
    bestedge_[w] = bestedge_[b] = -1;
    if (t == 1) {
        forEachLeaf(b, [&](int leaf) { queue_.push_back(leaf); });
    } else if (t == 2) {
        const int base = blossombase_[b];
        assignLabel(endpoint(mate_[base]), 1, mate_[base] ^ 1);
    }
}

int
Matcher::scanBlossom(int v, int w)
{
    std::vector<int> &path = pathBuf_;
    path.clear();
    int base = -1;
    while (v != -1 || w != -1) {
        int b = inblossom_[v];
        if (label_[b] & 4) {
            base = blossombase_[b];
            break;
        }
        path.push_back(b);
        label_[b] = 5;
        // Trace one step back.
        if (mate_[blossombase_[b]] == -1) {
            v = -1;
        } else {
            v = endpoint(mate_[blossombase_[b]]);
            b = inblossom_[v];
            // b is a T-blossom; trace one more step back.
            v = endpoint(labelend_[b]);
        }
        // Alternate between the two paths.
        if (w != -1)
            std::swap(v, w);
    }
    for (int b : path)
        label_[b] = 1;
    return base;
}

void
Matcher::addBlossom(int base, int k)
{
    int v = edges_[k].u;
    int w = edges_[k].v;
    const int bb = inblossom_[base];
    int bv = inblossom_[v];
    int bw = inblossom_[w];

    const int b = unusedblossoms_.back();
    unusedblossoms_.pop_back();
    blossombase_[b] = base;
    blossomparent_[b] = -1;
    blossomparent_[bb] = b;

    std::vector<int> &path = pathBuf_;
    std::vector<int> &endps = endpsBuf_;
    path.clear();
    endps.clear();
    while (bv != bb) {
        blossomparent_[bv] = b;
        path.push_back(bv);
        endps.push_back(labelend_[bv]);
        v = endpoint(labelend_[bv]);
        bv = inblossom_[v];
    }
    path.push_back(bb);
    std::reverse(path.begin(), path.end());
    std::reverse(endps.begin(), endps.end());
    endps.push_back(2 * k);
    while (bw != bb) {
        blossomparent_[bw] = b;
        path.push_back(bw);
        endps.push_back(labelend_[bw] ^ 1);
        w = endpoint(labelend_[bw]);
        bw = inblossom_[w];
    }
    blossomchilds_[b] = path;   // copy into the slot's kept capacity
    blossomendps_[b] = endps;

    label_[b] = 1;
    labelend_[b] = labelend_[bb];
    dualvar_[b] = 0;

    forEachLeaf(b, [&](int leaf) {
        if (label_[inblossom_[leaf]] == 2)
            queue_.push_back(leaf);
        inblossom_[leaf] = b;
    });

    // Recompute best edges into neighbouring S-blossoms.
    bestEdgeToBuf_.assign(2 * n_, -1);
    std::vector<int> &bestedgeto = bestEdgeToBuf_;
    auto consider = [&](int edge_k) {
        int j = edges_[edge_k].v;
        if (inblossom_[j] == b)
            j = edges_[edge_k].u;
        const int bj = inblossom_[j];
        if (bj != b && label_[bj] == 1 &&
            (bestedgeto[bj] == -1 ||
             slack(edge_k) < slack(bestedgeto[bj]))) {
            bestedgeto[bj] = edge_k;
        }
    };
    for (int child : blossomchilds_[b]) {
        if (blossombestedges_[child].empty()) {
            forEachLeaf(child, [&](int leaf) {
                for (int p : neighbend_[leaf])
                    consider(p >> 1);
            });
        } else {
            for (int edge_k : blossombestedges_[child])
                consider(edge_k);
        }
        blossombestedges_[child].clear();
        bestedge_[child] = -1;
    }
    blossombestedges_[b].clear();
    for (int edge_k : bestedgeto) {
        if (edge_k != -1)
            blossombestedges_[b].push_back(edge_k);
    }
    bestedge_[b] = -1;
    for (int edge_k : blossombestedges_[b]) {
        if (bestedge_[b] == -1 || slack(edge_k) < slack(bestedge_[b]))
            bestedge_[b] = edge_k;
    }
}

void
Matcher::expandBlossom(int b, bool endstage)
{
    // Copy (into this recursion level's pooled buffer): children are
    // modified while iterating in recursive calls. solve() pre-sizes
    // the pool to the maximum nesting depth, so the reference below
    // is never invalidated by a resize in a nested call.
    const int depth = expandDepth_++;
    panicIf(depth >= (int)expandPool_.size(),
            "blossom expansion exceeded the pre-sized depth pool");
    std::vector<int> &childs = expandPool_[depth];
    childs = blossomchilds_[b];
    for (int s : childs) {
        blossomparent_[s] = -1;
        if (s < n_) {
            inblossom_[s] = s;
        } else if (endstage && dualvar_[s] == 0) {
            expandBlossom(s, endstage);
        } else {
            forEachLeaf(s, [&](int leaf) { inblossom_[leaf] = s; });
        }
    }

    if (!endstage && label_[b] == 2) {
        // Relabel sub-blossoms along the path from the entry child to
        // the base.
        const int entrychild = inblossom_[endpoint(labelend_[b] ^ 1)];
        int j = 0;
        const int nchild = (int)blossomchilds_[b].size();
        for (int i = 0; i < nchild; ++i) {
            if (blossomchilds_[b][i] == entrychild) {
                j = i;
                break;
            }
        }
        int jstep;
        int endptrick;
        if (j & 1) {
            j -= nchild;
            jstep = 1;
            endptrick = 0;
        } else {
            jstep = -1;
            endptrick = 1;
        }
        auto child_at = [&](int idx) {
            return blossomchilds_[b][(idx % nchild + nchild) % nchild];
        };
        auto endp_at = [&](int idx) {
            return blossomendps_[b][(idx % nchild + nchild) % nchild];
        };
        int p = labelend_[b];
        while (j != 0) {
            label_[endpoint(p ^ 1)] = 0;
            label_[endpoint(endp_at(j - endptrick) ^ endptrick ^ 1)] = 0;
            assignLabel(endpoint(p ^ 1), 2, p);
            allowedge_[endp_at(j - endptrick) >> 1] = 1;
            j += jstep;
            p = endp_at(j - endptrick) ^ endptrick;
            allowedge_[p >> 1] = 1;
            j += jstep;
        }
        // Relabel the base T-sub-blossom without stepping to its mate.
        {
            const int bv = child_at(j);
            label_[endpoint(p ^ 1)] = 2;
            label_[bv] = 2;
            labelend_[endpoint(p ^ 1)] = p;
            labelend_[bv] = p;
            bestedge_[bv] = -1;
        }
        j += jstep;
        while (child_at(j) != entrychild) {
            const int bv = child_at(j);
            if (label_[bv] == 1) {
                j += jstep;
                continue;
            }
            int labeled_leaf = -1;
            forEachLeaf(bv, [&](int leaf) {
                if (labeled_leaf == -1 && label_[leaf] != 0)
                    labeled_leaf = leaf;
            });
            if (labeled_leaf != -1) {
                label_[labeled_leaf] = 0;
                label_[endpoint(mate_[blossombase_[bv]])] = 0;
                assignLabel(labeled_leaf, 2, labelend_[labeled_leaf]);
            }
            j += jstep;
        }
    }

    label_[b] = -1;
    labelend_[b] = -1;
    blossomchilds_[b].clear();
    blossomendps_[b].clear();
    blossombase_[b] = -1;
    blossombestedges_[b].clear();
    bestedge_[b] = -1;
    unusedblossoms_.push_back(b);
    --expandDepth_;
}

void
Matcher::augmentBlossom(int b, int v)
{
    // Bubble up to an immediate child of b.
    int t = v;
    while (blossomparent_[t] != b)
        t = blossomparent_[t];
    if (t >= n_)
        augmentBlossom(t, v);

    const int nchild = (int)blossomchilds_[b].size();
    int i = 0;
    for (int idx = 0; idx < nchild; ++idx) {
        if (blossomchilds_[b][idx] == t) {
            i = idx;
            break;
        }
    }
    int j = i;
    int jstep;
    int endptrick;
    if (i & 1) {
        j -= nchild;
        jstep = 1;
        endptrick = 0;
    } else {
        jstep = -1;
        endptrick = 1;
    }
    auto child_at = [&](int idx) {
        return blossomchilds_[b][(idx % nchild + nchild) % nchild];
    };
    auto endp_at = [&](int idx) {
        return blossomendps_[b][(idx % nchild + nchild) % nchild];
    };
    while (j != 0) {
        j += jstep;
        int child = child_at(j);
        const int p = endp_at(j - endptrick) ^ endptrick;
        if (child >= n_)
            augmentBlossom(child, endpoint(p));
        j += jstep;
        child = child_at(j);
        if (child >= n_)
            augmentBlossom(child, endpoint(p ^ 1));
        mate_[endpoint(p)] = p ^ 1;
        mate_[endpoint(p ^ 1)] = p;
    }
    // Rotate the child list so the new base is first.
    std::rotate(blossomchilds_[b].begin(),
                blossomchilds_[b].begin() + i, blossomchilds_[b].end());
    std::rotate(blossomendps_[b].begin(),
                blossomendps_[b].begin() + i, blossomendps_[b].end());
    blossombase_[b] = blossombase_[blossomchilds_[b][0]];
    panicIf(blossombase_[b] != v, "blossom augmentation lost its base");
}

void
Matcher::augmentMatching(int k)
{
    const int kv = edges_[k].u;
    const int kw = edges_[k].v;
    const int starts[2][2] = {{kv, 2 * k + 1}, {kw, 2 * k}};
    for (const auto &start : starts) {
        int s = start[0];
        int p = start[1];
        while (true) {
            const int bs = inblossom_[s];
            if (bs >= n_)
                augmentBlossom(bs, s);
            mate_[s] = p;
            if (labelend_[bs] == -1)
                break;
            const int t = endpoint(labelend_[bs]);
            const int bt = inblossom_[t];
            s = endpoint(labelend_[bt]);
            const int j = endpoint(labelend_[bt] ^ 1);
            if (bt >= n_)
                augmentBlossom(bt, j);
            mate_[j] = labelend_[bt];
            p = labelend_[bt] ^ 1;
        }
    }
}

void
Matcher::solve(std::vector<int> &partner)
{
    partner.assign(n_, -1);
    if (edges_.empty() || n_ == 0)
        return;

    const int nedge = (int)edges_.size();
    int64_t maxweight = 0;
    for (const auto &e : edges_)
        maxweight = std::max(maxweight, e.weight);

    resetNested(neighbend_, n_);
    for (int k = 0; k < nedge; ++k) {
        neighbend_[edges_[k].u].push_back(2 * k + 1);
        neighbend_[edges_[k].v].push_back(2 * k);
    }

    mate_.assign(n_, -1);
    label_.assign(2 * n_, 0);
    labelend_.assign(2 * n_, -1);
    inblossom_.resize(n_);
    for (int v = 0; v < n_; ++v)
        inblossom_[v] = v;
    blossomparent_.assign(2 * n_, -1);
    resetNested(blossomchilds_, 2 * (size_t)n_);
    blossombase_.resize(2 * n_);
    for (int v = 0; v < n_; ++v)
        blossombase_[v] = v;
    for (int b = n_; b < 2 * n_; ++b)
        blossombase_[b] = -1;
    resetNested(blossomendps_, 2 * (size_t)n_);
    bestedge_.assign(2 * n_, -1);
    resetNested(blossombestedges_, 2 * (size_t)n_);
    // Blossom nesting depth is bounded by the blossom count, so
    // expandBlossom's per-depth buffers can never resize (and thus
    // never invalidate an outer recursion frame's reference).
    if (expandPool_.size() < (size_t)n_)
        expandPool_.resize(n_);
    unusedblossoms_.clear();
    for (int b = n_; b < 2 * n_; ++b)
        unusedblossoms_.push_back(b);
    dualvar_.assign(2 * n_, 0);
    for (int v = 0; v < n_; ++v)
        dualvar_[v] = maxweight;
    allowedge_.assign(nedge, 0);
    queue_.clear();

    for (int stage = 0; stage < n_; ++stage) {
        std::fill(label_.begin(), label_.end(), 0);
        std::fill(bestedge_.begin(), bestedge_.end(), -1);
        for (int b = n_; b < 2 * n_; ++b)
            blossombestedges_[b].clear();
        std::fill(allowedge_.begin(), allowedge_.end(), 0);
        queue_.clear();

        for (int v = 0; v < n_; ++v) {
            if (mate_[v] == -1 && label_[inblossom_[v]] == 0)
                assignLabel(v, 1, -1);
        }

        bool augmented = false;
        while (true) {
            while (!queue_.empty() && !augmented) {
                const int v = queue_.back();
                queue_.pop_back();
                for (int p : neighbend_[v]) {
                    const int k = p >> 1;
                    const int w = endpoint(p);
                    if (inblossom_[v] == inblossom_[w])
                        continue;
                    int64_t kslack = 0;
                    if (!allowedge_[k]) {
                        kslack = slack(k);
                        if (kslack <= 0)
                            allowedge_[k] = 1;
                    }
                    if (allowedge_[k]) {
                        if (label_[inblossom_[w]] == 0) {
                            assignLabel(w, 2, p ^ 1);
                        } else if (label_[inblossom_[w]] == 1) {
                            const int base = scanBlossom(v, w);
                            if (base >= 0) {
                                addBlossom(base, k);
                            } else {
                                augmentMatching(k);
                                augmented = true;
                                break;
                            }
                        } else if (label_[w] == 0) {
                            label_[w] = 2;
                            labelend_[w] = p ^ 1;
                        }
                    } else if (label_[inblossom_[w]] == 1) {
                        const int b = inblossom_[v];
                        if (bestedge_[b] == -1 ||
                            kslack < slack(bestedge_[b]))
                            bestedge_[b] = k;
                    } else if (label_[w] == 0) {
                        if (bestedge_[w] == -1 ||
                            kslack < slack(bestedge_[w]))
                            bestedge_[w] = k;
                    }
                }
            }
            if (augmented)
                break;

            // Compute the dual update.
            int deltatype = -1;
            int64_t delta = 0;
            int deltaedge = -1;
            int deltablossom = -1;

            if (!maxCardinality_) {
                deltatype = 1;
                int64_t dmin = dualvar_[0];
                for (int v = 1; v < n_; ++v)
                    dmin = std::min(dmin, dualvar_[v]);
                delta = std::max<int64_t>(0, dmin);
            }
            for (int v = 0; v < n_; ++v) {
                if (label_[inblossom_[v]] == 0 && bestedge_[v] != -1) {
                    const int64_t d = slack(bestedge_[v]);
                    if (deltatype == -1 || d < delta) {
                        delta = d;
                        deltatype = 2;
                        deltaedge = bestedge_[v];
                    }
                }
            }
            for (int b = 0; b < 2 * n_; ++b) {
                if (blossomparent_[b] == -1 && label_[b] == 1 &&
                    bestedge_[b] != -1) {
                    const int64_t d = slack(bestedge_[b]) / 2;
                    if (deltatype == -1 || d < delta) {
                        delta = d;
                        deltatype = 3;
                        deltaedge = bestedge_[b];
                    }
                }
            }
            for (int b = n_; b < 2 * n_; ++b) {
                if (blossombase_[b] >= 0 && blossomparent_[b] == -1 &&
                    label_[b] == 2 &&
                    (deltatype == -1 || dualvar_[b] < delta)) {
                    delta = dualvar_[b];
                    deltatype = 4;
                    deltablossom = b;
                }
            }
            if (deltatype == -1) {
                deltatype = 1;
                int64_t dmin = dualvar_[0];
                for (int v = 1; v < n_; ++v)
                    dmin = std::min(dmin, dualvar_[v]);
                delta = std::max<int64_t>(0, dmin);
            }

            for (int v = 0; v < n_; ++v) {
                const int lbl = label_[inblossom_[v]];
                if (lbl == 1)
                    dualvar_[v] -= delta;
                else if (lbl == 2)
                    dualvar_[v] += delta;
            }
            for (int b = n_; b < 2 * n_; ++b) {
                if (blossombase_[b] >= 0 && blossomparent_[b] == -1) {
                    if (label_[b] == 1)
                        dualvar_[b] += delta;
                    else if (label_[b] == 2)
                        dualvar_[b] -= delta;
                }
            }

            if (deltatype == 1) {
                break;
            } else if (deltatype == 2) {
                allowedge_[deltaedge] = 1;
                int i = edges_[deltaedge].u;
                if (label_[inblossom_[i]] == 0)
                    i = edges_[deltaedge].v;
                queue_.push_back(i);
            } else if (deltatype == 3) {
                allowedge_[deltaedge] = 1;
                queue_.push_back(edges_[deltaedge].u);
            } else {
                expandBlossom(deltablossom, false);
            }
        }

        if (!augmented)
            break;

        for (int b = n_; b < 2 * n_; ++b) {
            if (blossomparent_[b] == -1 && blossombase_[b] >= 0 &&
                label_[b] == 1 && dualvar_[b] == 0) {
                expandBlossom(b, true);
            }
        }
    }

    for (int v = 0; v < n_; ++v) {
        if (mate_[v] != -1)
            partner[v] = endpoint(mate_[v]);
    }
    for (int v = 0; v < n_; ++v) {
        panicIf(partner[v] != -1 && partner[partner[v]] != v,
                "matching is not symmetric");
    }
}

} // namespace

size_t
MatcherScratch::footprintBytes() const
{
    auto flat = [](const auto &v) {
        return v.capacity() *
               sizeof(typename std::remove_reference_t<
                      decltype(v)>::value_type);
    };
    auto nested = [](const std::vector<std::vector<int>> &v) {
        size_t bytes = v.capacity() * sizeof(std::vector<int>);
        for (const auto &inner : v)
            bytes += inner.capacity() * sizeof(int);
        return bytes;
    };
    return nested(neighbend) + nested(blossomchilds) +
           nested(blossomendps) + nested(blossombestedges) +
           nested(expandPool) +
           flat(mate) + flat(label) + flat(labelend) +
           flat(inblossom) + flat(blossomparent) + flat(blossombase) +
           flat(bestedge) + flat(unusedblossoms) + flat(dualvar) +
           flat(allowedge) + flat(queue) + flat(leafStack) +
           flat(pathBuf) + flat(endpsBuf) + flat(bestEdgeToBuf);
}

std::vector<int>
maxWeightMatching(int num_vertices, const std::vector<MatchEdge> &edges,
                  bool max_cardinality)
{
    MatcherScratch scratch;
    Matcher matcher(num_vertices, edges, max_cardinality, scratch);
    std::vector<int> partner;
    matcher.solve(partner);
    return partner;
}

std::vector<int>
minWeightPerfectMatching(int num_vertices,
                         const std::vector<MatchEdge> &edges)
{
    std::vector<MatchEdge> scratch(edges);
    std::vector<int> partner;
    minWeightPerfectMatchingInPlace(num_vertices, scratch, partner);
    return partner;
}

void
minWeightPerfectMatchingInPlace(int num_vertices,
                                std::vector<MatchEdge> &edges,
                                std::vector<int> &partner)
{
    MatcherScratch scratch;
    minWeightPerfectMatchingInPlace(num_vertices, edges, partner,
                                    scratch);
}

void
minWeightPerfectMatchingInPlace(int num_vertices,
                                std::vector<MatchEdge> &edges,
                                std::vector<int> &partner,
                                MatcherScratch &scratch)
{
    int64_t wmax = 0;
    for (const auto &e : edges)
        wmax = std::max(wmax, e.weight);

    // Transform: maximizing (wmax + 1 - w) over maximum-cardinality
    // matchings minimizes total w over perfect matchings. Doubling
    // keeps every dual quantity integral.
    for (auto &e : edges)
        e.weight = 2 * (wmax + 1 - e.weight);

    Matcher matcher(num_vertices, edges, true, scratch);
    matcher.solve(partner);
    for (int v = 0; v < num_vertices; ++v) {
        panicIf(partner[v] == -1,
                "no perfect matching exists for this instance");
    }
}

} // namespace qec
