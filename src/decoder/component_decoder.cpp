#include "decoder/component_decoder.h"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <tuple>

#include "base/logging.h"

namespace qec
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** One anchored edge of a row signature: two rows are translation-
 *  equivalent iff their sorted signature lists are equal. */
using RowSig = std::tuple<int, int, int, int, int, int, int>;

} // namespace

ComponentGraph::ComponentGraph(const DetectorModel &dem, double p)
    : numDets_(dem.numDetectors()),
      stabsPerRound_(std::max(dem.stabsPerRound, 1)),
      rows_(dem.rounds + 1)
{
    // Detector-only adjacency over the positive-probability edges
    // (the decoders' graphs minus the boundary edges: composition
    // handles boundary sharing exactly, so the split must not merge
    // components through the boundary vertex). Counting-sort CSR.
    std::vector<int> degree((size_t)numDets_, 0);
    size_t pair_edges = 0;
    for (const auto &edge : dem.edges) {
        if (edge.probability(p) <= 0.0 || edge.b == kBoundary)
            continue;
        ++degree[edge.a];
        ++degree[edge.b];
        ++pair_edges;
        maxRowSpan_ = std::max(
            maxRowSpan_, std::abs(dem.detectorRound(edge.a) -
                                  dem.detectorRound(edge.b)));
    }
    csrOffsets_.assign((size_t)numDets_ + 1, 0);
    for (int d = 0; d < numDets_; ++d)
        csrOffsets_[(size_t)d + 1] = csrOffsets_[d] + degree[d];
    csrAdj_.resize(2 * pair_edges);
    std::vector<int> cursor(csrOffsets_.begin(), csrOffsets_.end() - 1);
    for (const auto &edge : dem.edges) {
        if (edge.probability(p) <= 0.0 || edge.b == kBoundary)
            continue;
        csrAdj_[(size_t)cursor[edge.a]++] = edge.b;
        csrAdj_[(size_t)cursor[edge.b]++] = edge.a;
    }

    // Translation-invariant row range: anchor every positive edge at
    // its earlier-row endpoint and collect per-row signatures; the
    // maximal run of identical signatures around the middle row is
    // the bulk. Canonical cache keys shift defect lists within this
    // range only, after a reach-margin check, so equality of the
    // signatures is exactly the isomorphism the replay relies on.
    std::vector<std::vector<RowSig>> sig((size_t)rows_);
    for (const auto &edge : dem.edges) {
        if (edge.probability(p) <= 0.0)
            continue;
        int a = edge.a;
        int b = edge.b;
        if (b == kBoundary) {
            sig[(size_t)dem.detectorRound(a)].push_back(
                {dem.detectorStab(a), -1000, -1,
                 edge.obsFlip ? 1 : 0, edge.n1, edge.n3, edge.n15});
            continue;
        }
        if (dem.detectorRound(a) > dem.detectorRound(b) ||
            (dem.detectorRound(a) == dem.detectorRound(b) &&
             dem.detectorStab(a) > dem.detectorStab(b)))
            std::swap(a, b);
        sig[(size_t)dem.detectorRound(a)].push_back(
            {dem.detectorStab(a),
             dem.detectorRound(b) - dem.detectorRound(a),
             dem.detectorStab(b), edge.obsFlip ? 1 : 0, edge.n1,
             edge.n3, edge.n15});
    }
    for (auto &row : sig)
        std::sort(row.begin(), row.end());
    const int mid = rows_ / 2;
    bulkLo_ = mid;
    bulkHi_ = mid;
    while (bulkLo_ > 0 && sig[(size_t)bulkLo_ - 1] == sig[(size_t)mid])
        --bulkLo_;
    while (bulkHi_ + 1 < rows_ &&
           sig[(size_t)bulkHi_ + 1] == sig[(size_t)mid])
        ++bulkHi_;

    // All-pairs distance table of the stab QUOTIENT graph (project
    // every detector-detector edge onto its stab indices; same-stab
    // edges become self-loops and vanish). dist(u, v) >=
    // qdist(stab(u), stab(v)) exactly — see the header's morphism
    // argument — and the table is tiny (stabsPerRound^2 bytes), so
    // both the split and the composition guard read exact spatial
    // bounds with one L1 load per pair.
    const int nstabs = stabsPerRound_;
    if (nstabs > 0 &&
        (size_t)nstabs * (size_t)nstabs <= (size_t)(16u << 20)) {
        std::vector<int> stabAdjOff((size_t)nstabs + 1, 0);
        std::vector<int> stabAdj;
        std::vector<std::pair<int, int>> stab_edges;
        for (const auto &edge : dem.edges) {
            if (edge.probability(p) <= 0.0 || edge.b == kBoundary)
                continue;
            const int sa = dem.detectorStab(edge.a);
            const int sb = dem.detectorStab(edge.b);
            if (sa != sb)
                stab_edges.push_back({sa, sb});
        }
        for (const auto &e : stab_edges) {
            ++stabAdjOff[(size_t)e.first + 1];
            ++stabAdjOff[(size_t)e.second + 1];
        }
        for (int s = 0; s < nstabs; ++s)
            stabAdjOff[(size_t)s + 1] += stabAdjOff[s];
        stabAdj.resize(2 * stab_edges.size());
        std::vector<int> cur(stabAdjOff.begin(), stabAdjOff.end() - 1);
        for (const auto &e : stab_edges) {
            stabAdj[(size_t)cur[e.first]++] = e.second;
            stabAdj[(size_t)cur[e.second]++] = e.first;
        }

        qdist_.assign((size_t)nstabs * (size_t)nstabs, 0xff);
        std::vector<int> queue;
        queue.reserve((size_t)nstabs);
        for (int src = 0; src < nstabs; ++src) {
            uint8_t *row = qdist_.data() + (size_t)src * nstabs;
            queue.clear();
            row[src] = 0;
            queue.push_back(src);
            for (size_t head = 0; head < queue.size(); ++head) {
                const int u = queue[head];
                // Saturate at 0xfe (a valid lower bound) so 0xff
                // keeps meaning "provably disconnected".
                const uint8_t nd =
                    row[u] >= 0xfe ? 0xfe : (uint8_t)(row[u] + 1);
                for (int e = stabAdjOff[u];
                     e < stabAdjOff[(size_t)u + 1]; ++e) {
                    const int w = stabAdj[e];
                    if (row[w] != 0xff)
                        continue;
                    row[w] = nd;
                    queue.push_back(w);
                }
            }
        }
    }
}

int
ComponentGraph::split(const int *defects, size_t count,
                      int hop_radius, DecodeWorkspace &ws) const
{
    const int n = (int)count;
    ws.ensureComponents(count);

    // Union-find over defect indices; path-halving find.
    for (int i = 0; i < n; ++i)
        ws.cgParent[i] = i;
    auto findSet = [&](int v) {
        while (ws.cgParent[v] != v) {
            ws.cgParent[v] = ws.cgParent[ws.cgParent[v]];
            v = ws.cgParent[v];
        }
        return v;
    };
    auto unite = [&](int a, int b) {
        a = findSet(a);
        b = findSet(b);
        if (a != b)
            ws.cgParent[std::max(a, b)] = std::min(a, b);
    };

    // Merge every defect pair whose hop distance cannot be PROVEN
    // > 2h by the row / landmark-potential lower bounds — a superset
    // of radius-h ball overlap, so cross-component defects are
    // certified >= 2h+1 hops apart without ever walking the detector
    // graph. Defect ids are row-major, so after sorting an index
    // permutation by id the row window becomes a contiguous index
    // window and the scan is O(pairs within 2h*maxRowSpan rows).
    ws.cgQueue.resize(count);
    for (int i = 0; i < n; ++i)
        ws.cgQueue[i] = i;
    std::sort(ws.cgQueue.begin(), ws.cgQueue.end(),
              [&](int a, int b) { return defects[a] < defects[b]; });
    const int row_cap = 2 * hop_radius * maxRowSpan_;
    for (int a = 0; a < n; ++a) {
        const int ia = ws.cgQueue[a];
        const int da = defects[ia];
        const int row_a = da / stabsPerRound_;
        for (int b = a + 1; b < n; ++b) {
            const int ib = ws.cgQueue[b];
            const int db = defects[ib];
            if (db / stabsPerRound_ - row_a > row_cap)
                break;
            if (findSet(ia) == findSet(ib))
                continue;
            // The row window already failed to prove > 2h; the only
            // remaining separator is the quotient distance.
            if (quotientDistance(da % stabsPerRound_,
                                 db % stabsPerRound_) <=
                2 * hop_radius)
                unite(ia, ib);
        }
    }

    // Label components by first appearance and group the defects in
    // ORIGINAL list order (verdict composition is bit-identical to
    // the joint decode only because each sublist preserves it).
    int num_comps = 0;
    for (int i = 0; i < n; ++i) {
        if (findSet(i) == i)
            ws.cgLabel[i] = num_comps++;
    }
    ws.compOffsets.assign((size_t)num_comps + 1, 0);
    for (int i = 0; i < n; ++i)
        ++ws.compOffsets[(size_t)ws.cgLabel[findSet(i)] + 1];
    for (int c = 0; c < num_comps; ++c)
        ws.compOffsets[(size_t)c + 1] += ws.compOffsets[c];
    ws.compDefects.resize(count);
    ws.compCursor.assign(ws.compOffsets.begin(),
                         ws.compOffsets.end() - 1);
    ws.compMinRow.assign((size_t)num_comps, rows_);
    ws.compMaxRow.assign((size_t)num_comps, -1);
    for (int i = 0; i < n; ++i) {
        const int c = ws.cgLabel[findSet(i)];
        ws.compDefects[(size_t)ws.compCursor[c]++] = defects[i];
        const int row = rowOf(defects[i]);
        ws.compMinRow[c] = std::min(ws.compMinRow[c], row);
        ws.compMaxRow[c] = std::max(ws.compMaxRow[c], row);
    }
    return num_comps;
}

int
ComponentGraph::hopDistance(int a, int b, int cap) const
{
    if (a == b)
        return 0;
    std::vector<int> dist((size_t)numDets_, -1);
    std::vector<int> queue;
    dist[a] = 0;
    queue.push_back(a);
    for (size_t head = 0; head < queue.size(); ++head) {
        const int u = queue[head];
        if (dist[u] >= cap)
            break;
        const int row_end = csrOffsets_[(size_t)u + 1];
        for (int k = csrOffsets_[u]; k < row_end; ++k) {
            const int w = csrAdj_[k];
            if (dist[w] >= 0)
                continue;
            if (w == b)
                return dist[u] + 1;
            dist[w] = dist[u] + 1;
            queue.push_back(w);
        }
    }
    return cap + 1;
}

int
ComponentGraph::pairDistanceLowerBound(const DecodeWorkspace &ws,
                                       int ci, int cj) const
{
    // Min over defect cross pairs of the per-pair bound; reads the
    // SPLIT's sublists (compOffsets / compDefects), which stay intact
    // through guard merging. Components are tiny, so the quadratic
    // scan is a handful of L1 loads.
    int lb = INT_MAX;
    for (int a = ws.compOffsets[ci];
         a < ws.compOffsets[(size_t)ci + 1]; ++a) {
        const int da = ws.compDefects[a];
        for (int b = ws.compOffsets[cj];
             b < ws.compOffsets[(size_t)cj + 1]; ++b) {
            lb = std::min(
                lb, defectDistanceLowerBound(da, ws.compDefects[b]));
            if (lb == 0)
                return 0;
        }
    }
    return lb;
}

ComponentCache::ComponentCache(const ComponentDecodeOptions &options)
    : arenaCapacity_(options.arenaCapacity)
{
    const uint32_t log2 = std::min(options.tableLog2, 24u);
    slots_.resize(size_t{1} << log2);
    mask_ = slots_.size() - 1;
    arena_.reserve(arenaCapacity_);
}

namespace
{

inline uint64_t
componentKeyHash(const int *defects, size_t count, int shift,
                 bool canonical)
{
    // Shifted and absolute keys live in disjoint hash namespaces so
    // a canonical entry can never satisfy an absolute probe (or vice
    // versa) even for numerically identical lists.
    uint64_t h = kFnvOffset ^ (canonical ? 0x9e3779b9u : 0u);
    for (size_t k = 0; k < count; ++k)
        h = (h ^ (uint64_t)(uint32_t)(defects[k] - shift)) * kFnvPrime;
    return h;
}

inline bool
componentKeyEquals(const int *stored, const int *defects,
                   size_t count, int shift)
{
    for (size_t k = 0; k < count; ++k) {
        if (stored[k] != defects[k] - shift)
            return false;
    }
    return true;
}

} // namespace

bool
ComponentCache::lookup(const int *defects, size_t count, int shift,
                       bool canonical, int max_reach, bool &verdict,
                       int &reach)
{
    const uint64_t hash =
        componentKeyHash(defects, count, shift, canonical);
    size_t slot = hash & mask_;
    while (slots_[slot].flags & 1) {
        const Slot &s = slots_[slot];
        if (s.hash == hash && s.count == count &&
            ((s.flags >> 1) & 1) == (canonical ? 1 : 0) &&
            componentKeyEquals(arena_.data() + s.offset, defects,
                               count, shift)) {
            if (canonical && (int)s.reach > max_reach) {
                // The stored decode's reach-ball does not fit this
                // placement's bulk margin: replaying it here could
                // see a different graph, so treat as a miss (exact,
                // just less reuse).
                ++stats_.marginRejects;
                break;
            }
            verdict = s.verdict != 0;
            reach = (int)s.reach;
            ++stats_.hits;
            if (canonical)
                ++stats_.canonicalHits;
            return true;
        }
        slot = (slot + 1) & mask_;
    }
    ++stats_.misses;
    return false;
}

void
ComponentCache::insert(const int *defects, size_t count, int shift,
                       bool canonical, bool verdict, int reach)
{
    if (count > arenaCapacity_)
        return;
    if (used_ + 1 > slots_.size() - slots_.size() / 4 ||
        arena_.size() + count > arenaCapacity_) {
        stats_.lastFlush = {stats_.hits - hitsAtFlush_,
                            stats_.misses - missesAtFlush_,
                            (uint64_t)used_,
                            (double)used_ / (double)slots_.size()};
        hitsAtFlush_ = stats_.hits;
        missesAtFlush_ = stats_.misses;
        stats_.evictions += used_;
        ++stats_.flushes;
        flush();
    }
    const uint64_t hash =
        componentKeyHash(defects, count, shift, canonical);
    size_t slot = hash & mask_;
    while (slots_[slot].flags & 1) {
        const Slot &s = slots_[slot];
        if (s.hash == hash && s.count == count &&
            ((s.flags >> 1) & 1) == (canonical ? 1 : 0) &&
            componentKeyEquals(arena_.data() + s.offset, defects,
                               count, shift))
            return;   // already cached
        slot = (slot + 1) & mask_;
    }
    Slot &s = slots_[slot];
    s.hash = hash;
    s.offset = (uint32_t)arena_.size();
    s.count = (uint32_t)count;
    s.reach = (uint16_t)std::min(reach, 0xffff);
    s.verdict = verdict ? 1 : 0;
    s.flags = (uint8_t)(1 | (canonical ? 2 : 0));
    for (size_t k = 0; k < count; ++k)
        arena_.push_back(defects[k] - shift);
    ++used_;
}

void
ComponentCache::flush()
{
    std::fill(slots_.begin(), slots_.end(), Slot{});
    arena_.clear();
    used_ = 0;
}

} // namespace qec
