/**
 * @file
 * Minimum-weight perfect matching decoder over a DetectorModel.
 *
 * Decoding pipeline (the paper's "gold standard" MWPM, Section 2.2):
 *  1. Dijkstra from every fired detector over the weighted decoding
 *     graph (weight = log((1-q)/q) per edge), tracking the logical
 *     observable parity along shortest paths, with early termination
 *     once the nearest-K defects and a boundary route are known.
 *  2. Reduce to minimum-weight perfect matching with one virtual
 *     boundary twin per defect (the standard doubling construction).
 *  3. Exact blossom matching; the predicted observable flip is the
 *     parity of matched-path observable crossings.
 */

#ifndef QEC_DECODER_MWPM_DECODER_H
#define QEC_DECODER_MWPM_DECODER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "decoder/decoder_base.h"
#include "decoder/detector_model.h"

namespace qec
{

/** Tuning knobs for the decoder. */
struct DecoderOptions
{
    /** Defect-neighbour candidates kept per defect. */
    int neighborLimit = 12;
    /** Hard cap on settled nodes per Dijkstra (safety valve). */
    int settleCap = 1 << 20;
};

/**
 * MWPM decoder bound to one DetectorModel and physical error rate.
 * Thread-safe: decode() uses only local workspace.
 */
class MwpmDecoder : public Decoder
{
  public:
    MwpmDecoder(const DetectorModel &dem, double p,
                DecoderOptions options = {});

    /**
     * Decode one shot.
     * @param defects Fired detector ids.
     * @return Predicted logical-observable flip.
     */
    bool decode(const std::vector<int> &defects) const override;

    int numDetectors() const { return numDets_; }

    /** Total decoding-graph edges (diagnostics/tests). */
    size_t
    numGraphEdges() const
    {
        return numEdges_;
    }

  private:
    struct Nbr
    {
        int to;
        float w;
        uint8_t obs;
    };

    int numDets_ = 0;
    size_t numEdges_ = 0;
    DecoderOptions options_;
    std::vector<std::vector<Nbr>> adj_;
    /** Best direct boundary edge per detector (+inf if none). */
    std::vector<float> boundaryW_;
    std::vector<uint8_t> boundaryObs_;
};

} // namespace qec

#endif // QEC_DECODER_MWPM_DECODER_H
