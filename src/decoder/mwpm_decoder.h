/**
 * @file
 * Minimum-weight perfect matching decoder over a DetectorModel.
 *
 * Decoding pipeline (the paper's "gold standard" MWPM, Section 2.2):
 *  1. One multi-source Dijkstra grows shortest-path regions around
 *     all fired detectors simultaneously over the weighted decoding
 *     graph (weight = log((1-q)/q) per edge), tracking the logical
 *     observable parity along shortest paths. Where two regions meet,
 *     the meeting edge yields a defect-pair candidate — at the exact
 *     shortest inter-defect distance whenever the shortest path stays
 *     inside the two regions; pairs separated by a third defect's
 *     region are represented through that defect's candidates instead
 *     (the local-matching approximation). Every touched node settles
 *     at most once per shot. The defect-to-boundary route is NOT
 *     searched per shot: the exact shortest boundary distance (and
 *     its observable parity) is precomputed for every detector id at
 *     construction with one multi-source Dijkstra from the boundary,
 *     and region growth is pruned beyond the radius where every pair
 *     is boundary-dominated.
 *  2. Reduce to minimum-weight perfect matching with one virtual
 *     boundary twin per defect (the standard doubling construction).
 *     Candidates that cannot beat pairing both endpoints with the
 *     boundary are pruned, and each Dijkstra stops at its boundary
 *     distance plus the shot's largest boundary distance — beyond
 *     that every pair is boundary-dominated.
 *  3. Exact blossom matching per connected component of the candidate
 *     graph (cross-component pairings are boundary-dominated, so the
 *     O(n^3) solver runs on many small instances — the sparse-blossom
 *     trick); the predicted observable flip is the parity of
 *     matched-path observable crossings.
 *
 * Adjacency is a flat CSR layout and all per-shot scratch lives in the
 * caller's DecodeWorkspace (epoch-stamped, nothing cleared between
 * shots); steady-state allocations are confined to the blossom
 * solver's internals.
 */

#ifndef QEC_DECODER_MWPM_DECODER_H
#define QEC_DECODER_MWPM_DECODER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "decoder/decoder_base.h"
#include "decoder/detector_model.h"

namespace qec
{

/** Tuning knobs for the decoder. */
struct DecoderOptions
{
    /** Defect-neighbour candidates kept per defect. */
    int neighborLimit = 12;
    /** Hard cap on settled nodes per Dijkstra (safety valve). */
    int settleCap = 1 << 20;
};

/**
 * MWPM decoder bound to one DetectorModel and physical error rate.
 * decode() is thread-safe (throwaway workspace); hot loops should use
 * decodeSparse with one DecodeWorkspace per thread.
 */
class MwpmDecoder : public Decoder
{
  public:
    MwpmDecoder(const DetectorModel &dem, double p,
                DecoderOptions options = {});

    bool decodeSparse(const int *defects, size_t count,
                      DecodeWorkspace &workspace) const override;

    /**
     * Shot-level slack for component composition: the Dijkstra
     * pruning radius is each defect's boundary distance plus the
     * shot's largest boundary distance, so a component decoded alone
     * certifies only its own radius (lastReachHops) and composing it
     * inside a larger shot can extend the reach by at most the shot's
     * largest boundary distance, converted to hops via the minimum
     * detector-detector edge weight.
     */
    int componentSlackHops(const int *defects,
                           size_t count) const override;

    int numDetectors() const { return numDets_; }

    /** Total decoding-graph edges (diagnostics/tests). */
    size_t
    numGraphEdges() const
    {
        return numEdges_;
    }

    /** Cached exact shortest distance from a detector to the boundary
     *  (+inf when the boundary is unreachable). */
    double
    boundaryDistance(int det) const
    {
        return boundaryDist_[det];
    }

  private:
    struct Nbr
    {
        int to;
        float w;
        uint8_t obs;
    };

    int numDets_ = 0;
    size_t numEdges_ = 0;
    DecoderOptions options_;
    /** Minimum detector-detector edge weight: converts weight radii
     *  into hop bounds for the reach certificates (+inf if the graph
     *  has no detector-detector edges, i.e. regions never grow). */
    double minEdgeW_ = 0.0;
    /** CSR adjacency: neighbours of detector d live at
     *  nbrs_[nbrOffsets_[d] .. nbrOffsets_[d + 1]). */
    std::vector<int> nbrOffsets_;
    std::vector<Nbr> nbrs_;
    /** Best direct boundary edge per detector (+inf if none). */
    std::vector<float> boundaryW_;
    std::vector<uint8_t> boundaryObs_;
    /** Persistent defect-to-boundary cache keyed by detector id:
     *  exact shortest boundary distance and its observable parity. */
    std::vector<double> boundaryDist_;
    std::vector<uint8_t> boundaryPathObs_;
};

} // namespace qec

#endif // QEC_DECODER_MWPM_DECODER_H
