/**
 * @file
 * Union-Find decoder (Delfosse-Nickerson, "almost-linear time
 * decoding") over the same detector graph as the MWPM decoder.
 *
 * Clusters grow outward from fired detectors one edge-layer at a time
 * until every cluster holds an even number of defects or touches the
 * spatial boundary; a spanning-forest peeling pass then selects the
 * correction edges. Faster but slightly less accurate than MWPM —
 * included as the comparison point the paper alludes to ("any other
 * decoder may be used as well", Section 5.3).
 */

#ifndef QEC_DECODER_UNION_FIND_DECODER_H
#define QEC_DECODER_UNION_FIND_DECODER_H

#include <cstdint>
#include <vector>

#include "decoder/decoder_base.h"
#include "decoder/detector_model.h"

namespace qec
{

class UnionFindDecoder : public Decoder
{
  public:
    /**
     * Build from a detector model. @param p Physical error rate used
     * only to drop zero-probability edges (parity with MwpmDecoder).
     */
    UnionFindDecoder(const DetectorModel &dem, double p);

    bool decode(const std::vector<int> &defects) const override;

    int numDetectors() const { return numDets_; }

  private:
    struct Edge
    {
        int u;
        int v;          ///< May be the virtual boundary vertex.
        uint8_t obs;
    };

    int numDets_ = 0;
    int boundaryVertex_ = 0;   ///< Single virtual boundary vertex id.
    std::vector<Edge> edges_;
    /** Adjacency: vertex -> incident edge indices. */
    std::vector<std::vector<int>> incident_;
};

} // namespace qec

#endif // QEC_DECODER_UNION_FIND_DECODER_H
