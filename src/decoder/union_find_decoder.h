/**
 * @file
 * Union-Find decoder (Delfosse-Nickerson, "almost-linear time
 * decoding") over the same detector graph as the MWPM decoder.
 *
 * Clusters grow outward from fired detectors one edge-layer at a time
 * until every cluster holds an even number of defects or touches the
 * spatial boundary; a spanning-forest peeling pass then selects the
 * correction edges. Faster but slightly less accurate than MWPM —
 * included as the comparison point the paper alludes to ("any other
 * decoder may be used as well", Section 5.3).
 *
 * The decoding graph is stored as a flat CSR adjacency (one offsets
 * array plus one incident-edge-id array, built once at construction),
 * and all mutable per-shot state lives in an epoch-versioned
 * DecodeWorkspace: decodeSparse() performs zero heap allocations in
 * steady state and touches only the vertices reachable from the fired
 * detectors, so per-shot cost is proportional to the defect count
 * rather than the lattice size.
 */

#ifndef QEC_DECODER_UNION_FIND_DECODER_H
#define QEC_DECODER_UNION_FIND_DECODER_H

#include <cstdint>
#include <vector>

#include "decoder/decoder_base.h"
#include "decoder/detector_model.h"

namespace qec
{

class UnionFindDecoder : public Decoder
{
  public:
    /**
     * Build from a detector model. @param p Physical error rate used
     * only to drop zero-probability edges (parity with MwpmDecoder).
     */
    UnionFindDecoder(const DetectorModel &dem, double p);

    bool decodeSparse(const int *defects, size_t count,
                      DecodeWorkspace &workspace) const override;

    /**
     * Component composition is exact with zero shot slack: cluster
     * growth is a pure function of the defect list, and decodeSparse
     * reports its growth-layer count as the reach certificate (every
     * touched vertex is within that many hops of a defect).
     */
    int
    componentSlackHops(const int *, size_t) const override
    {
        return 0;
    }

    /**
     * Growth bound for streaming commits: every decode's touched
     * region stays within this many hops of its clusters' defects,
     * for any defect set — a cluster is permanently neutralized by
     * the time its grown ball reaches the boundary vertex, so the
     * graph's max distance-to-boundary (computed once at
     * construction) bounds every cluster's radius.
     */
    int
    windowCommitBound() const override
    {
        return commitBound_;
    }

    int numDetectors() const { return numDets_; }
    /** Total decoding-graph edges (diagnostics/tests). */
    size_t numGraphEdges() const { return edges_.size(); }

  private:
    struct Edge
    {
        int u;
        int v;          ///< May be the virtual boundary vertex.
        uint8_t obs;
    };

    /** Packed CSR adjacency slot: the far endpoint plus the edge id
     *  and observable-flip bit in one word ((id << 1) | obs), so the
     *  growth scan resolves an edge with a single 8-byte load instead
     *  of chasing an edge-id indirection into the edge table. */
    struct Adj
    {
        int other;
        int eo;
    };

    int numDets_ = 0;
    int boundaryVertex_ = 0;   ///< Single virtual boundary vertex id.
    int commitBound_ = 0;      ///< Max hops to boundary (-1: none).
    std::vector<Edge> edges_;
    /** CSR adjacency: incident slots of vertex v live at
     *  csrAdj_[csrOffsets_[v] .. csrOffsets_[v + 1]). */
    std::vector<int> csrOffsets_;
    std::vector<Adj> csrAdj_;
};

} // namespace qec

#endif // QEC_DECODER_UNION_FIND_DECODER_H
