#include "decoder/sparse_syndrome.h"

#include "base/logging.h"

namespace qec
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t
hashStep(uint64_t h, int det)
{
    return (h ^ (uint64_t)(uint32_t)det) * kFnvPrime;
}

} // namespace

uint64_t
syndromeHash(const int *defects, size_t count)
{
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < count; ++k)
        h = hashStep(h, defects[k]);
    return h;
}

void
SparseSyndromeExtractor::extract(
    const RotatedSurfaceCode &code, Basis basis, int rounds,
    const std::vector<BatchMeasureRecord> &record, int num_lanes,
    BatchSyndrome &out)
{
    const StabType type = protectingStabType(basis);
    const int n_s = code.numBasisStabilizers(basis);
    const uint64_t live = laneMask(num_lanes);

    // Fold the record into detector bit-planes: one XOR merges a
    // measurement into all lanes at once. Record flips are zero
    // outside their lane mask, so plain XOR is safe.
    mflip_.assign((size_t)n_s * rounds, 0);
    dataFlip_.assign(code.numData(), 0);
    for (const auto &rec : record) {
        if (rec.finalData) {
            dataFlip_[rec.qubit] ^= rec.flips;
            continue;
        }
        if (rec.stab < 0)
            continue;
        const auto &stab = code.stabilizer(rec.stab);
        if (stab.type != type)
            continue;
        if (rec.round < 0 || rec.round >= rounds)
            panic("measurement round out of range");
        mflip_[(size_t)rec.round * n_s + stab.basisIndex] ^= rec.flips;
    }

    // Pass 1: detection-event words (stabilizer-major so per-lane
    // defect lists come out in the scalar extractDefects order), with
    // per-lane counts for the flat arena layout.
    events_.resize((size_t)n_s * (rounds + 1));
    uint32_t counts[64] = {0};
    for (int s = 0; s < n_s; ++s) {
        uint64_t prev = 0;
        uint64_t *row = events_.data() + (size_t)s * (rounds + 1);
        for (int r = 0; r < rounds; ++r) {
            const uint64_t cur = mflip_[(size_t)r * n_s + s];
            uint64_t ev = (cur ^ prev) & live;
            row[r] = ev;
            prev = cur;
            while (ev) {
                ++counts[__builtin_ctzll(ev)];
                ev &= ev - 1;
            }
        }
        // Final row: reconstruct the stabilizer from data measurements.
        const int stab_index = code.basisStabilizers(basis)[s];
        uint64_t recon = 0;
        for (int q : code.stabilizer(stab_index).support)
            recon ^= dataFlip_[q];
        uint64_t ev = (recon ^ prev) & live;
        row[rounds] = ev;
        while (ev) {
            ++counts[__builtin_ctzll(ev)];
            ev &= ev - 1;
        }
    }

    // Pass 2: lay the defect ids out lane-major in one flat arena.
    out.numLanes = num_lanes;
    out.offsets.resize((size_t)num_lanes + 1);
    out.laneHash.resize(num_lanes);
    out.nonzeroMask = 0;
    uint32_t total = 0;
    uint32_t cursor[64];
    for (int l = 0; l < num_lanes; ++l) {
        out.offsets[l] = total;
        cursor[l] = total;
        total += counts[l];
        out.laneHash[l] = kFnvOffset;
        if (counts[l])
            out.nonzeroMask |= uint64_t{1} << l;
    }
    out.offsets[num_lanes] = total;
    out.defects.resize(total);
    for (int s = 0; s < n_s; ++s) {
        const uint64_t *row = events_.data() + (size_t)s * (rounds + 1);
        for (int r = 0; r <= rounds; ++r) {
            uint64_t ev = row[r];
            if (!ev)
                continue;
            const int det = r * n_s + s;
            do {
                const int l = __builtin_ctzll(ev);
                ev &= ev - 1;
                out.defects[cursor[l]++] = det;
                out.laneHash[l] = hashStep(out.laneHash[l], det);
            } while (ev);
        }
    }

    uint64_t observable = 0;
    for (int q : code.logicalSupport(basis))
        observable ^= dataFlip_[q];
    out.observableWord = observable & live;
}

} // namespace qec
