#include "decoder/sparse_syndrome.h"

#include "base/logging.h"

namespace qec
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t
hashStep(uint64_t h, int det)
{
    return (h ^ (uint64_t)(uint32_t)det) * kFnvPrime;
}

} // namespace

uint64_t
syndromeHash(const int *defects, size_t count)
{
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < count; ++k)
        h = hashStep(h, defects[k]);
    return h;
}

template <int NW>
void
SparseSyndromeExtractor::extract(
    const RotatedSurfaceCode &code, Basis basis, int rounds,
    const std::vector<BatchMeasureRecordT<NW>> &record, int num_lanes,
    BatchSyndrome &out)
{
    const StabType type = protectingStabType(basis);
    const int n_s = code.numBasisStabilizers(basis);
    const int nw = (num_lanes + 63) / 64;

    // Fold the record into detector bit-planes: NW XORs merge a
    // measurement into all lanes at once. Record flips are zero
    // outside their lane mask, so plain XOR is safe.
    mflip_.assign((size_t)n_s * rounds * nw, 0);
    dataFlip_.assign((size_t)code.numData() * nw, 0);
    for (const auto &rec : record) {
        if (rec.finalData) {
            uint64_t *dst = dataFlip_.data() + (size_t)rec.qubit * nw;
            for (int b = 0; b < nw; ++b)
                dst[b] ^= laneWord(rec.flips, b);
            continue;
        }
        if (rec.stab < 0)
            continue;
        const auto &stab = code.stabilizer(rec.stab);
        if (stab.type != type)
            continue;
        if (rec.round < 0 || rec.round >= rounds)
            panic("measurement round out of range");
        uint64_t *dst =
            mflip_.data() +
            ((size_t)rec.round * n_s + stab.basisIndex) * nw;
        for (int b = 0; b < nw; ++b)
            dst[b] ^= laneWord(rec.flips, b);
    }

    // Pass 1: detection-event words (stabilizer-major so per-lane
    // defect lists come out in the scalar extractDefects order), with
    // per-lane counts for the flat arena layout.
    events_.resize((size_t)n_s * (rounds + 1) * nw);
    uint32_t counts[kMaxBatchLanes] = {0};
    uint64_t live[kMaxBatchWords];
    for (int b = 0; b < nw; ++b)
        live[b] = laneMask64(num_lanes - 64 * b);
    uint64_t recon[kMaxBatchWords];
    for (int s = 0; s < n_s; ++s) {
        uint64_t prev[kMaxBatchWords] = {0};
        uint64_t *row = events_.data() + (size_t)s * (rounds + 1) * nw;
        for (int r = 0; r < rounds; ++r) {
            const uint64_t *cur =
                mflip_.data() + ((size_t)r * n_s + s) * nw;
            for (int b = 0; b < nw; ++b) {
                uint64_t ev = (cur[b] ^ prev[b]) & live[b];
                row[(size_t)r * nw + b] = ev;
                prev[b] = cur[b];
                const int base = 64 * b;
                while (ev) {
                    ++counts[base + __builtin_ctzll(ev)];
                    ev &= ev - 1;
                }
            }
        }
        // Final row: reconstruct the stabilizer from data measurements.
        const int stab_index = code.basisStabilizers(basis)[s];
        for (int b = 0; b < nw; ++b)
            recon[b] = 0;
        for (int q : code.stabilizer(stab_index).support) {
            const uint64_t *src = dataFlip_.data() + (size_t)q * nw;
            for (int b = 0; b < nw; ++b)
                recon[b] ^= src[b];
        }
        for (int b = 0; b < nw; ++b) {
            uint64_t ev = (recon[b] ^ prev[b]) & live[b];
            row[(size_t)rounds * nw + b] = ev;
            const int base = 64 * b;
            while (ev) {
                ++counts[base + __builtin_ctzll(ev)];
                ev &= ev - 1;
            }
        }
    }

    // Pass 2: lay the defect ids out lane-major in one flat arena.
    out.numLanes = num_lanes;
    out.numWords = nw;
    out.observableWords.fill(0);
    out.nonzeroWords.fill(0);
    out.offsets.resize((size_t)num_lanes + 1);
    out.laneHash.resize(num_lanes);
    uint32_t total = 0;
    uint32_t cursor[kMaxBatchLanes];
    for (int l = 0; l < num_lanes; ++l) {
        out.offsets[l] = total;
        cursor[l] = total;
        total += counts[l];
        out.laneHash[l] = kFnvOffset;
        if (counts[l])
            out.nonzeroWords[l >> 6] |= uint64_t{1} << (l & 63);
    }
    out.offsets[num_lanes] = total;
    out.defects.resize(total);
    for (int s = 0; s < n_s; ++s) {
        const uint64_t *row =
            events_.data() + (size_t)s * (rounds + 1) * nw;
        for (int r = 0; r <= rounds; ++r) {
            const int det = r * n_s + s;
            for (int b = 0; b < nw; ++b) {
                uint64_t ev = row[(size_t)r * nw + b];
                const int base = 64 * b;
                while (ev) {
                    const int l = base + __builtin_ctzll(ev);
                    ev &= ev - 1;
                    out.defects[cursor[l]++] = det;
                    out.laneHash[l] = hashStep(out.laneHash[l], det);
                }
            }
        }
    }

    for (int q : code.logicalSupport(basis)) {
        const uint64_t *src = dataFlip_.data() + (size_t)q * nw;
        for (int b = 0; b < nw; ++b)
            out.observableWords[b] ^= src[b];
    }
    for (int b = 0; b < nw; ++b)
        out.observableWords[b] &= live[b];
}

template <int NW>
void
SparseSyndromeExtractor::extract(
    const IrDetectorMap &map, int rounds,
    const std::vector<BatchMeasureRecordT<NW>> &record, int num_lanes,
    BatchSyndrome &out)
{
    const int n_s = map.cols;
    const int nw = (num_lanes + 63) / 64;

    // Fold the record into detector bit-planes, routing stabilizer
    // ids through the program's detector-column map (no lattice
    // queries anywhere in this overload).
    mflip_.assign((size_t)n_s * rounds * nw, 0);
    dataFlip_.assign((size_t)map.numData * nw, 0);
    for (const auto &rec : record) {
        if (rec.finalData) {
            uint64_t *dst = dataFlip_.data() + (size_t)rec.qubit * nw;
            for (int b = 0; b < nw; ++b)
                dst[b] ^= laneWord(rec.flips, b);
            continue;
        }
        if (rec.stab < 0)
            continue;
        const int col = map.stabColumn[rec.stab];
        if (col < 0)
            continue;
        if (rec.round < 0 || rec.round >= rounds)
            panic("measurement round out of range");
        uint64_t *dst =
            mflip_.data() + ((size_t)rec.round * n_s + col) * nw;
        for (int b = 0; b < nw; ++b)
            dst[b] ^= laneWord(rec.flips, b);
    }

    // Pass 1: detection-event words (column-major so per-lane defect
    // lists come out in the scalar extractDefects order), with
    // per-lane counts for the flat arena layout.
    events_.resize((size_t)n_s * (rounds + 1) * nw);
    uint32_t counts[kMaxBatchLanes] = {0};
    uint64_t live[kMaxBatchWords];
    for (int b = 0; b < nw; ++b)
        live[b] = laneMask64(num_lanes - 64 * b);
    uint64_t recon[kMaxBatchWords];
    for (int s = 0; s < n_s; ++s) {
        uint64_t prev[kMaxBatchWords] = {0};
        uint64_t *row = events_.data() + (size_t)s * (rounds + 1) * nw;
        for (int r = 0; r < rounds; ++r) {
            const uint64_t *cur =
                mflip_.data() + ((size_t)r * n_s + s) * nw;
            for (int b = 0; b < nw; ++b) {
                uint64_t ev = (cur[b] ^ prev[b]) & live[b];
                row[(size_t)r * nw + b] = ev;
                prev[b] = cur[b];
                const int base = 64 * b;
                while (ev) {
                    ++counts[base + __builtin_ctzll(ev)];
                    ev &= ev - 1;
                }
            }
        }
        // Final row: reconstruct the column from data measurements
        // through the program's column-support CSR.
        for (int b = 0; b < nw; ++b)
            recon[b] = 0;
        for (int k = map.colSupportOffset[s];
             k < map.colSupportOffset[(size_t)s + 1]; ++k) {
            const uint64_t *src =
                dataFlip_.data() + (size_t)map.colSupportData[k] * nw;
            for (int b = 0; b < nw; ++b)
                recon[b] ^= src[b];
        }
        for (int b = 0; b < nw; ++b) {
            uint64_t ev = (recon[b] ^ prev[b]) & live[b];
            row[(size_t)rounds * nw + b] = ev;
            const int base = 64 * b;
            while (ev) {
                ++counts[base + __builtin_ctzll(ev)];
                ev &= ev - 1;
            }
        }
    }

    // Pass 2: lay the defect ids out lane-major in one flat arena.
    out.numLanes = num_lanes;
    out.numWords = nw;
    out.observableWords.fill(0);
    out.nonzeroWords.fill(0);
    out.offsets.resize((size_t)num_lanes + 1);
    out.laneHash.resize(num_lanes);
    uint32_t total = 0;
    uint32_t cursor[kMaxBatchLanes];
    for (int l = 0; l < num_lanes; ++l) {
        out.offsets[l] = total;
        cursor[l] = total;
        total += counts[l];
        out.laneHash[l] = kFnvOffset;
        if (counts[l])
            out.nonzeroWords[l >> 6] |= uint64_t{1} << (l & 63);
    }
    out.offsets[num_lanes] = total;
    out.defects.resize(total);
    for (int s = 0; s < n_s; ++s) {
        const uint64_t *row =
            events_.data() + (size_t)s * (rounds + 1) * nw;
        for (int r = 0; r <= rounds; ++r) {
            const int det = r * n_s + s;
            for (int b = 0; b < nw; ++b) {
                uint64_t ev = row[(size_t)r * nw + b];
                const int base = 64 * b;
                while (ev) {
                    const int l = base + __builtin_ctzll(ev);
                    ev &= ev - 1;
                    out.defects[cursor[l]++] = det;
                    out.laneHash[l] = hashStep(out.laneHash[l], det);
                }
            }
        }
    }

    for (int q : map.observable) {
        const uint64_t *src = dataFlip_.data() + (size_t)q * nw;
        for (int b = 0; b < nw; ++b)
            out.observableWords[b] ^= src[b];
    }
    for (int b = 0; b < nw; ++b)
        out.observableWords[b] &= live[b];
}

template void SparseSyndromeExtractor::extract<1>(
    const RotatedSurfaceCode &, Basis, int,
    const std::vector<BatchMeasureRecordT<1>> &, int, BatchSyndrome &);
template void SparseSyndromeExtractor::extract<4>(
    const RotatedSurfaceCode &, Basis, int,
    const std::vector<BatchMeasureRecordT<4>> &, int, BatchSyndrome &);
template void SparseSyndromeExtractor::extract<8>(
    const RotatedSurfaceCode &, Basis, int,
    const std::vector<BatchMeasureRecordT<8>> &, int, BatchSyndrome &);

template void SparseSyndromeExtractor::extract<1>(
    const IrDetectorMap &, int,
    const std::vector<BatchMeasureRecordT<1>> &, int, BatchSyndrome &);
template void SparseSyndromeExtractor::extract<4>(
    const IrDetectorMap &, int,
    const std::vector<BatchMeasureRecordT<4>> &, int, BatchSyndrome &);
template void SparseSyndromeExtractor::extract<8>(
    const IrDetectorMap &, int,
    const std::vector<BatchMeasureRecordT<8>> &, int, BatchSyndrome &);

} // namespace qec
