#include "decoder/batch_decoder.h"

namespace qec
{

BatchDecoder::BatchDecoder(const Decoder &decoder,
                           SyndromeCacheOptions cache_options)
    : decoder_(decoder), cache_(cache_options)
{
}

bool
BatchDecoder::decodeCached(uint64_t hash, const int *defects,
                           size_t count)
{
    bool verdict = false;
    if (cache_.lookup(hash, defects, count, verdict)) {
        ++stats_.cacheHits;
        return verdict;
    }
    verdict = decoder_.decodeSparse(defects, count, workspace_);
    ++stats_.decoded;
    cache_.insert(hash, defects, count, verdict);
    return verdict;
}

uint64_t
BatchDecoder::decodeBatch(const BatchSyndrome &batch)
{
    uint64_t predictions = 0;
    for (int l = 0; l < batch.numLanes; ++l) {
        ++stats_.shots;
        const size_t count = batch.laneSize(l);
        if (count == 0) {
            ++stats_.zeroDefect;   // fast path: predict "no flip"
            continue;
        }
        if (decodeCached(batch.laneHash[l], batch.laneBegin(l), count))
            predictions |= uint64_t{1} << l;
    }
    return predictions;
}

bool
BatchDecoder::decodeOne(const int *defects, size_t count)
{
    ++stats_.shots;
    if (count == 0) {
        ++stats_.zeroDefect;
        return false;
    }
    return decodeCached(syndromeHash(defects, count), defects, count);
}

} // namespace qec
