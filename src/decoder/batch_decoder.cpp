#include "decoder/batch_decoder.h"

#include "base/logging.h"

namespace qec
{

BatchDecoder::BatchDecoder(const Decoder &decoder,
                           SyndromeCacheOptions cache_options)
    : decoder_(decoder), cache_(cache_options)
{
}

bool
BatchDecoder::decodeCached(uint64_t hash, const int *defects,
                           size_t count)
{
    bool verdict = false;
    if (cache_.lookup(hash, defects, count, verdict)) {
        ++stats_.cacheHits;
        return verdict;
    }
    verdict = decoder_.decodeSparse(defects, count, workspace_);
    ++stats_.decoded;
    cache_.insert(hash, defects, count, verdict);
    return verdict;
}

void
BatchDecoder::decodeBatch(const BatchSyndrome &batch,
                          uint64_t *predictions)
{
    for (int b = 0; b < batch.numWords; ++b)
        predictions[b] = 0;
    stats_.shots += (uint64_t)batch.numLanes;
    // Zero-defect lanes predict "no flip" without touching the
    // decoder; scan only the nonzero lanes.
    for (int b = 0; b < batch.numWords; ++b) {
        uint64_t nonzero =
            batch.nonzeroWords[b] & laneMask64(batch.numLanes - 64 * b);
        const int base = 64 * b;
        while (nonzero) {
            const int l = base + __builtin_ctzll(nonzero);
            nonzero &= nonzero - 1;
            if (decodeCached(batch.laneHash[l], batch.laneBegin(l),
                             batch.laneSize(l)))
                predictions[b] |= uint64_t{1} << (l - base);
        }
    }
    uint64_t nonzero_total = 0;
    for (int b = 0; b < batch.numWords; ++b)
        nonzero_total += (uint64_t)__builtin_popcountll(
            batch.nonzeroWords[b]);
    stats_.zeroDefect += (uint64_t)batch.numLanes - nonzero_total;
}

uint64_t
BatchDecoder::decodeBatch(const BatchSyndrome &batch)
{
    panicIf(batch.numLanes > 64,
            "single-word decodeBatch needs the word-array overload "
            "for groups wider than 64 lanes");
    uint64_t predictions[kMaxBatchWords] = {0};
    decodeBatch(batch, predictions);
    return predictions[0];
}

bool
BatchDecoder::decodeOne(const int *defects, size_t count)
{
    ++stats_.shots;
    if (count == 0) {
        ++stats_.zeroDefect;
        return false;
    }
    return decodeCached(syndromeHash(defects, count), defects, count);
}

} // namespace qec
