#include "decoder/batch_decoder.h"

#include <algorithm>
#include <climits>

#include "base/logging.h"

namespace qec
{

namespace
{

/** Shrink the component cache to nothing when the stage is off, so
 *  legacy (cache-only) pipelines don't pay for its table. */
ComponentDecodeOptions
effectiveComponentOptions(const ComponentDecodeOptions &options,
                          bool has_graph)
{
    ComponentDecodeOptions c = options;
    if (!has_graph || !c.enabled) {
        c.enabled = false;
        c.tableLog2 = 0;
        c.arenaCapacity = 0;
    }
    return c;
}

} // namespace

BatchDecoder::BatchDecoder(const Decoder &decoder,
                           SyndromeCacheOptions cache_options)
    : decoder_(decoder), cache_(cache_options),
      componentCache_(effectiveComponentOptions({}, false))
{
    options_.cache = cache_options;
    options_.components.enabled = false;
}

BatchDecoder::BatchDecoder(const Decoder &decoder,
                           const BatchDecodeOptions &options,
                           std::shared_ptr<const ComponentGraph> graph)
    : decoder_(decoder), options_(options), graph_(std::move(graph)),
      cache_(options.cache),
      componentCache_(effectiveComponentOptions(options.components,
                                                graph_ != nullptr))
{
    options_.components =
        effectiveComponentOptions(options.components,
                                  graph_ != nullptr);
    if (options_.windowLength > 0) {
        panicIf(!graph_, "sliding-window decode needs a "
                         "ComponentGraph for the row geometry");
        windowed_ = options_.windowLength < graph_->rows();
        panicIf(windowed_ &&
                    (options_.windowSlideLength < 1 ||
                     options_.windowSlideLength >
                         options_.windowLength),
                "windowSlideLength must be in [1, windowLength]");
    }
}

bool
BatchDecoder::decodeCached(uint64_t hash, const int *defects,
                           size_t count)
{
    bool verdict = false;
    if (cache_.lookup(hash, defects, count, verdict)) {
        ++stats_.cacheHits;
        return verdict;
    }
    verdict = decodeLane(defects, count);
    ++stats_.decoded;
    cache_.insert(hash, defects, count, verdict);
    return verdict;
}

bool
BatchDecoder::decodeLane(const int *defects, size_t count)
{
    if (windowed_)
        return decodeWindowed(defects, count);
    if (options_.components.enabled) {
        // Negative slack = the decoder does not certify component
        // composition; stay on the (always-exact) whole-shot path.
        // Oversized slack = certified but pointless: most lanes would
        // fail the exactness guard after paying for the split.
        const int slack = decoder_.componentSlackHops(defects, count);
        if (slack >= 0 && slack <= options_.components.maxShotSlack)
            return decodeComponents(defects, count, slack);
    }
    return decoder_.decodeSparse(defects, count, workspace_);
}

bool
BatchDecoder::decodeComponents(const int *defects, size_t count,
                               int shot_slack)
{
    DecodeWorkspace &ws = workspace_;
    const int h = options_.components.hopRadius;
    const int m = graph_->split(defects, count, h, ws);
    ++stats_.componentLanes;
    stats_.componentsTotal += (uint64_t)m;
    if ((size_t)m > ws.compReach.size()) {
        ws.compReach.resize((size_t)m);
        ws.compVerdict.resize((size_t)m);
        ws.compGroup.resize((size_t)m);
    }

    // Decode one (possibly merged) component group: component cache
    // first — canonical (time-translated) keying when the group sits
    // in the bulk with margin, absolute ids otherwise — then the real
    // decoder on a miss.
    auto decodeGroup = [&](const int *sub, size_t cnt, int min_row,
                           int max_row, int &reach) {
        const int limit =
            options_.components.canonicalKeys
                ? graph_->canonicalReachLimit(min_row, max_row)
                : -1;
        const int shift =
            limit >= 0 ? graph_->canonicalShift(min_row) : 0;
        bool verdict = false;
        reach = 0;
        bool hit = false;
        if (limit >= 0)
            hit = componentCache_.lookup(sub, cnt, shift, true, limit,
                                         verdict, reach);
        if (!hit)
            hit = componentCache_.lookup(sub, cnt, 0, false, 0,
                                         verdict, reach);
        if (hit) {
            ++stats_.componentCacheHits;
            return verdict;
        }
        verdict = decoder_.decodeSparse(sub, cnt, ws);
        // The stored certificate must bound the component-ALONE
        // decode's touched ball: the decoder's reach report plus its
        // slack for this component decoded as its own shot.
        const int own_slack = decoder_.componentSlackHops(sub, cnt);
        reach = ws.lastReachHops + (own_slack > 0 ? own_slack : 0);
        ++stats_.componentsDecoded;
        if (limit >= 0 && reach <= limit)
            componentCache_.insert(sub, cnt, shift, true, verdict,
                                   reach);
        else
            componentCache_.insert(sub, cnt, 0, false, verdict,
                                   reach);
        return verdict;
    };

    for (int c = 0; c < m; ++c) {
        ws.compGroup[c] = c;
        const int *sub = ws.compDefects.data() + ws.compOffsets[c];
        const size_t cnt =
            (size_t)(ws.compOffsets[(size_t)c + 1] -
                     ws.compOffsets[c]);
        int reach = 0;
        const bool verdict = decodeGroup(sub, cnt, ws.compMinRow[c],
                                         ws.compMaxRow[c], reach);
        ws.compVerdict[c] = verdict ? 1 : 0;
        ws.compReach[c] = reach;
    }

    // Composition guard: the XOR composition is exactly the joint
    // decode when every pair of groups is separated by more hops than
    // the sum of its effective reaches (stored certificate + this
    // shot's slack) — the touched regions are then disjoint balls
    // with no connecting edge. The split certifies dist >= 2h+1 for
    // every pair, which settles the common case in O(1) via the two
    // largest reaches; pairs that outrun it are re-checked against
    // the row-gap / stab-quotient distance bounds, and a pair
    // failing both is MERGED and re-decoded as one group
    // — far cheaper than re-decoding the whole lane. Merging repeats
    // until the guard holds, so composition is exact by construction;
    // the degenerate end state (everything merged) IS the whole-lane
    // decode.
    if (m >= 2) {
        auto findGroup = [&](int c) {
            while (ws.compGroup[c] != c) {
                ws.compGroup[c] = ws.compGroup[ws.compGroup[c]];
                c = ws.compGroup[c];
            }
            return c;
        };
        auto findComp = [&](int i) {
            while (ws.cgParent[i] != i) {
                ws.cgParent[i] = ws.cgParent[ws.cgParent[i]];
                i = ws.cgParent[i];
            }
            return ws.cgLabel[i];
        };
        // Group set-distance guard: a set distance is the min over
        // its parts, so two groups are proven > `need` apart iff
        // every original-component cross pair is (the split sublists
        // stay tight through merging; only the row boxes widen, and
        // those now serve canonical keying alone).
        auto groupsProvenApart = [&](int gi, int gj, int need) {
            for (int a = 0; a < m; ++a) {
                if (findGroup(a) != gi)
                    continue;
                for (int b = 0; b < m; ++b) {
                    if (findGroup(b) != gj)
                        continue;
                    if (graph_->pairDistanceLowerBound(ws, a, b) <=
                        need)
                        return false;
                }
            }
            return true;
        };
        for (bool changed = true; changed;) {
            changed = false;
            int top1 = 0;
            int top2 = 0;   // two largest group reach certificates
            for (int c = 0; c < m; ++c) {
                if (findGroup(c) != c)
                    continue;
                const int reach = ws.compReach[c];
                if (reach > top1) {
                    top2 = top1;
                    top1 = reach;
                } else if (reach > top2) {
                    top2 = reach;
                }
            }
            if (top1 + top2 + 2 * shot_slack <= 2 * h)
                break;
            for (int i = 0; i < m; ++i) {
                if (findGroup(i) != i)
                    continue;
                for (int j = i + 1; j < m; ++j) {
                    if (findGroup(j) != j)
                        continue;
                    const int need = ws.compReach[i] +
                                     ws.compReach[j] +
                                     2 * shot_slack;
                    if (need <= 2 * h ||
                        groupsProvenApart(i, j, need))
                        continue;
                    // Merge j into i; the row box widens to the
                    // union so canonical keying of the merged list
                    // stays sound.
                    ws.compGroup[j] = i;
                    ws.compMinRow[i] = std::min(ws.compMinRow[i],
                                                ws.compMinRow[j]);
                    ws.compMaxRow[i] = std::max(ws.compMaxRow[i],
                                                ws.compMaxRow[j]);
                    ws.compReach[i] = -1;   // dirty: re-decode below
                    ++stats_.guardFallbacks;
                    changed = true;
                }
            }
            if (!changed)
                break;
            // Re-decode every group that absorbed a neighbour, on its
            // union defect list rebuilt in ORIGINAL order (verdict
            // composition is bit-identical to the joint decode only
            // because every sublist preserves it).
            for (int g = 0; g < m; ++g) {
                if (findGroup(g) != g || ws.compReach[g] >= 0)
                    continue;
                ws.compMerged.clear();
                for (size_t k = 0; k < count; ++k)
                    if (findGroup(findComp((int)k)) == g)
                        ws.compMerged.push_back(defects[k]);
                int reach = 0;
                const bool verdict = decodeGroup(
                    ws.compMerged.data(), ws.compMerged.size(),
                    ws.compMinRow[g], ws.compMaxRow[g], reach);
                ws.compVerdict[g] = verdict ? 1 : 0;
                ws.compReach[g] = reach;
            }
        }
    }

    bool lane_verdict = false;
    for (int c = 0; c < m; ++c)
        if (ws.compGroup[c] == c)
            lane_verdict ^= (ws.compVerdict[c] != 0);
    return lane_verdict;
}

bool
BatchDecoder::decodeWindowed(const int *defects, size_t count)
{
    DecodeWorkspace &ws = workspace_;
    const int rows = graph_->rows();
    const int L = options_.windowLength;
    const int S = options_.windowSlideLength;
    const int span = graph_->maxRowSpan();
    const int bound = decoder_.windowCommitBound();

    // Cluster-complete streaming commits. Each window decodes every
    // not-yet-committed defect whose row the run has seen, then
    // commits whole grown clusters — never parts of one. A cluster
    // commits only when it is PROVABLY beyond the decoder's growth
    // bound `bound` from (a) every row the run has not seen yet and
    // (b) every defect of a cluster that is itself deferred: any
    // unseen or deferred defect's full-history cluster stays inside
    // ball(defect, bound), so a committed cluster's region can never
    // share an edge with it, the full-history decode evolves as the
    // disjoint union, and the committed cluster (and its observable
    // parity) is exactly a full-history cluster. Everything else is
    // deferred — regathered into the next window — and the final
    // window commits unconditionally (nothing is unseen).
    //
    // decodeSparse is a pure function of the defect SEQUENCE (growth
    // seeds its layer-1 active list in input order), so each window's
    // input is built as a SUBSEQUENCE of the caller's list, in the
    // caller's order: any subset's relative order is then identical
    // to the full-history call, which (with the disjointness
    // certificates) makes a committed cluster's evolution — grown
    // edges, peel forest, observable parity — exactly the one the
    // full-history decode runs, and makes a no-commit run's final
    // window the full-history call verbatim. Verdicts are therefore
    // bit-identical to the full-history decode for every defect set
    // and every (L, S); window sizing only trades deferral rate
    // against peak decoder state.
    // No certified growth bound (MWPM): no cluster can ever commit
    // early and the final window would decode the caller's list
    // verbatim — do exactly that, without asking the decoder for a
    // cluster export it does not implement.
    if (bound < 0) {
        ++stats_.windows;
        ++stats_.windowCommits;
        return decoder_.decodeSparse(defects, count, ws);
    }

    winDone_.assign(count, 0);
    bool verdict = false;
    int prev_end = 0;
    for (int w0 = 0; prev_end < rows; w0 += S) {
        const int w_end = std::min(w0 + L, rows);
        const bool final_window = w_end >= rows;

        // Uncommitted defects in seen rows, in caller order.
        winDefects_.clear();
        for (size_t k = 0; k < count; ++k) {
            if (!winDone_[k] &&
                graph_->rowOf(defects[k]) < w_end)
                winDefects_.push_back(defects[k]);
        }
        prev_end = w_end;
        if (winDefects_.empty())
            continue;

        ws.recordClusters = true;
        decoder_.decodeSparse(winDefects_.data(), winDefects_.size(),
                              ws);
        ws.recordClusters = false;
        ++stats_.windows;
        if ((uint64_t)winDefects_.size() > stats_.windowPeakDefects)
            stats_.windowPeakDefects = (uint64_t)winDefects_.size();
        const int m = (int)ws.clusters.size();

        // Separation needed between a committed cluster's defects and
        // any other defect: both sides' full-history regions live in
        // radius-`bound` balls around their own defects, and two such
        // balls share no edge once the defect sets are more than
        // 2*bound + 1 hops apart (ball-vs-ball, not point-vs-ball).
        const int sep = 2 * bound + 1;
        winCommit_.assign((size_t)m, 1);
        if (!final_window) {
            // (a) Unseen-row separation: rows >= w_end are unseen, so
            // commit needs ceil((w_end - maxRow) / span) > sep.
            for (int c = 0; c < m; ++c) {
                const int max_row =
                    graph_->rowOf(ws.clusters[(size_t)c].maxVertex);
                if (w_end - max_row <= sep * span)
                    winCommit_[(size_t)c] = 0;
            }
            // (b) Deferred-defect separation, to a fixpoint: demote a
            // candidate when some deferred defect is not provably >
            // sep hops from its region (region extents give the exact
            // row-gap bound; the per-defect-pair bound covers the
            // space axis).
            bool changed = true;
            while (changed) {
                changed = false;
                for (size_t i = 0; i < winDefects_.size(); ++i) {
                    for (size_t j = 0; j < winDefects_.size(); ++j) {
                        const int ci = ws.clusterOf[winDefects_[i]];
                        const int cj = ws.clusterOf[winDefects_[j]];
                        if (!winCommit_[(size_t)ci] ||
                            winCommit_[(size_t)cj])
                            continue;
                        const auto &k = ws.clusters[(size_t)ci];
                        const int row_j =
                            graph_->rowOf(winDefects_[j]);
                        const int gap = std::max(
                            {graph_->rowOf(k.minVertex) - row_j,
                             row_j - graph_->rowOf(k.maxVertex), 0});
                        const int lb = std::max(
                            (gap + span - 1) / span,
                            graph_->defectDistanceLowerBound(
                                winDefects_[i], winDefects_[j]));
                        if (lb <= sep) {
                            winCommit_[(size_t)ci] = 0;
                            changed = true;
                        }
                    }
                }
            }
        }

        for (int c = 0; c < m; ++c) {
            if (winCommit_[(size_t)c]) {
                verdict ^= ws.clusters[(size_t)c].obsParity != 0;
                ++stats_.windowCommits;
            } else {
                ++stats_.windowDeferrals;
            }
        }
        for (size_t k = 0; k < count; ++k) {
            if (!winDone_[k] &&
                graph_->rowOf(defects[k]) < w_end &&
                winCommit_[(size_t)ws.clusterOf[defects[k]]])
                winDone_[k] = 1;
        }
        if (final_window)
            break;
    }
    return verdict;
}

void
BatchDecoder::decodeBatch(const BatchSyndrome &batch,
                          uint64_t *predictions)
{
    for (int b = 0; b < batch.numWords; ++b)
        predictions[b] = 0;
    stats_.shots += (uint64_t)batch.numLanes;
    // Zero-defect lanes predict "no flip" without touching the
    // decoder; scan only the nonzero lanes.
    for (int b = 0; b < batch.numWords; ++b) {
        uint64_t nonzero =
            batch.nonzeroWords[b] & laneMask64(batch.numLanes - 64 * b);
        const int base = 64 * b;
        while (nonzero) {
            const int l = base + __builtin_ctzll(nonzero);
            nonzero &= nonzero - 1;
            if (decodeCached(batch.laneHash[l], batch.laneBegin(l),
                             batch.laneSize(l)))
                predictions[b] |= uint64_t{1} << (l - base);
        }
    }
    uint64_t nonzero_total = 0;
    for (int b = 0; b < batch.numWords; ++b)
        nonzero_total += (uint64_t)__builtin_popcountll(
            batch.nonzeroWords[b]);
    stats_.zeroDefect += (uint64_t)batch.numLanes - nonzero_total;
}

uint64_t
BatchDecoder::decodeBatch(const BatchSyndrome &batch)
{
    panicIf(batch.numLanes > 64,
            "single-word decodeBatch needs the word-array overload "
            "for groups wider than 64 lanes");
    uint64_t predictions[kMaxBatchWords] = {0};
    decodeBatch(batch, predictions);
    return predictions[0];
}

bool
BatchDecoder::decodeOne(const int *defects, size_t count)
{
    ++stats_.shots;
    if (count == 0) {
        ++stats_.zeroDefect;
        return false;
    }
    return decodeCached(syndromeHash(defects, count), defects, count);
}

} // namespace qec
