/**
 * @file
 * Syndrome dedup cache: decode each distinct sparse syndrome once.
 *
 * At the low physical error rates ERASER targets, many shots in a
 * batch share identical sparse syndromes (the zero-defect shot is the
 * extreme case, handled even earlier by the decode pipeline's fast
 * path). Decoding is a pure function of the defect list, so the first
 * decode's observable-flip verdict can be replayed for every later
 * shot with the same syndrome.
 *
 * Implementation: open-addressed hash table with linear probing over
 * fixed-capacity slot and defect-arena arrays. Hits compare the full
 * stored defect list, so hash collisions can never replay a wrong
 * verdict. When either array fills, the whole cache is flushed (a
 * counted event) — steady state allocates nothing.
 */

#ifndef QEC_DECODER_SYNDROME_CACHE_H
#define QEC_DECODER_SYNDROME_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec
{

/** Sizing/enable knobs for the dedup cache. */
struct SyndromeCacheOptions
{
    bool enabled = true;
    /** log2 of the slot count. */
    uint32_t tableLog2 = 13;
    /** Capacity of the stored-defect arena (ints). */
    uint32_t arenaCapacity = 1u << 17;
};

struct SyndromeCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t flushes = 0;

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0 : (double)hits / (double)total;
    }
};

class SyndromeCache
{
  public:
    explicit SyndromeCache(SyndromeCacheOptions options = {});

    /**
     * Look up a syndrome. On hit, stores the cached verdict in
     * `verdict` and returns true.
     */
    bool lookup(uint64_t hash, const int *defects, size_t count,
                bool &verdict);

    /** Record a decoded verdict (no-op when disabled or oversized). */
    void insert(uint64_t hash, const int *defects, size_t count,
                bool verdict);

    const SyndromeCacheStats & stats() const { return stats_; }
    void resetStats() { stats_ = {}; }
    size_t size() const { return used_; }
    bool enabled() const { return options_.enabled; }

  private:
    struct Slot
    {
        uint64_t hash = 0;
        uint32_t offset = 0;
        uint32_t count = 0;
        uint8_t verdict = 0;
        uint8_t used = 0;
    };

    void flush();

    SyndromeCacheOptions options_;
    SyndromeCacheStats stats_;
    std::vector<Slot> slots_;
    std::vector<int> arena_;
    size_t used_ = 0;
    uint64_t mask_ = 0;
};

} // namespace qec

#endif // QEC_DECODER_SYNDROME_CACHE_H
