/**
 * @file
 * Syndrome dedup cache: decode each distinct sparse syndrome once.
 *
 * At the low physical error rates ERASER targets, many shots in a
 * batch share identical sparse syndromes (the zero-defect shot is the
 * extreme case, handled even earlier by the decode pipeline's fast
 * path). Decoding is a pure function of the defect list, so the first
 * decode's observable-flip verdict can be replayed for every later
 * shot with the same syndrome.
 *
 * Implementation: open-addressed hash table with linear probing over
 * fixed-capacity slot and defect-arena arrays. Hits compare the full
 * stored defect list, so hash collisions can never replay a wrong
 * verdict. When either array fills, the whole cache is flushed (a
 * counted event) — steady state allocates nothing.
 */

#ifndef QEC_DECODER_SYNDROME_CACHE_H
#define QEC_DECODER_SYNDROME_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec
{

/** Sizing/enable knobs for the dedup cache. */
struct SyndromeCacheOptions
{
    bool enabled = true;
    /** log2 of the slot count. */
    uint32_t tableLog2 = 13;
    /** Capacity of the stored-defect arena (ints). */
    uint32_t arenaCapacity = 1u << 17;
    /**
     * Round-truncated prefix keying (0 = off = exact). When set to k,
     * cache HASHES are computed from the syndrome *prefix* only — the
     * defects in all but the last k detector rows — which makes
     * hashing cheaper and clusters shots that agree on the early
     * rounds onto one probe chain. Every hit is still verified
     * against the stored FULL defect list before its verdict is
     * replayed, so the mode is miss-only-approximate: a prefix
     * collision with a differing tail costs extra probing, never a
     * wrong correction. Verdicts are therefore bit-identical to the
     * exact mode at every setting. The experiment layer derives
     * `keyDetectorLimit` from this and the round/stabilizer counts.
     */
    uint32_t truncateRounds = 0;
    /** Derived detector-id cutoff for the truncated key: defects with
     *  id >= this are excluded from keys (0 = exact full-list keys).
     *  Filled in by the experiment layer; set directly only in tests. */
    uint32_t keyDetectorLimit = 0;
};

/**
 * Derive `keyDetectorLimit` from `truncateRounds` for an experiment
 * with `rounds` syndrome rounds and `basis_stabilizers` decoded
 * checks per round (the syndrome has rounds+1 detector rows including
 * the final data-derived row). No-op when truncation is off or the
 * limit was set explicitly; shared by every batched decode entry
 * point so the knob behaves identically everywhere.
 */
SyndromeCacheOptions resolveSyndromeCacheOptions(
    SyndromeCacheOptions options, int rounds, int basis_stabilizers);

/** One wholesale flush of the cache, for occupancy diagnostics. */
struct SyndromeCacheFlush
{
    uint64_t hits = 0;       ///< Hits since the previous flush.
    uint64_t misses = 0;     ///< Misses since the previous flush.
    uint64_t evicted = 0;    ///< Entries dropped by this flush.
    double occupancy = 0.0;  ///< Slot occupancy when flushed.
};

struct SyndromeCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t flushes = 0;
    uint64_t evictions = 0;        ///< Total entries dropped by flushes.
    SyndromeCacheFlush lastFlush;  ///< Most recent flush snapshot.

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0 : (double)hits / (double)total;
    }
};

class SyndromeCache
{
  public:
    explicit SyndromeCache(SyndromeCacheOptions options = {});

    /**
     * Look up a syndrome. On hit, stores the cached verdict in
     * `verdict` and returns true. With truncated keying enabled the
     * caller's `hash` is ignored (the cache hashes the truncated
     * prefix itself), but a hit still requires the FULL stored defect
     * list to match — truncation can only cause extra misses, never a
     * wrong verdict.
     */
    bool lookup(uint64_t hash, const int *defects, size_t count,
                bool &verdict);

    /** Record a decoded verdict (no-op when disabled or oversized).
     *  With truncated keying, an insert that immediately follows a
     *  lookup on the same (pointer, count) list reuses that lookup's
     *  truncation — callers must not mutate the defect buffer between
     *  the two calls (the decode pipeline never does). */
    void insert(uint64_t hash, const int *defects, size_t count,
                bool verdict);

    const SyndromeCacheStats & stats() const { return stats_; }
    void resetStats() { stats_ = {}; }
    size_t size() const { return used_; }
    bool enabled() const { return options_.enabled; }

  private:
    struct Slot
    {
        uint64_t hash = 0;
        uint32_t offset = 0;
        uint32_t count = 0;
        uint8_t verdict = 0;
        uint8_t used = 0;
    };

    void flush();
    /** FNV hash of the ids below the truncated-key cutoff. */
    uint64_t truncateKey(const int *defects, size_t count);

    SyndromeCacheOptions options_;
    SyndromeCacheStats stats_;
    uint64_t hitsAtFlush_ = 0;
    uint64_t missesAtFlush_ = 0;
    std::vector<Slot> slots_;
    std::vector<int> arena_;
    // A miss is followed by insert() on the same list (the pipeline's
    // lookup -> decode -> insert sequence); remembering the lookup's
    // truncation avoids filtering and hashing the list twice.
    const int *lastKeySrc_ = nullptr;
    size_t lastKeyCount_ = 0;
    uint64_t lastKeyHash_ = 0;
    bool lastKeyValid_ = false;
    size_t used_ = 0;
    uint64_t mask_ = 0;
};

} // namespace qec

#endif // QEC_DECODER_SYNDROME_CACHE_H
