/**
 * @file
 * Decoder interface. The paper evaluates with MWPM ("the gold
 * standard") but notes any decoder works; the harness accepts any
 * implementation of this interface so decoders can be compared under
 * identical leakage conditions.
 */

#ifndef QEC_DECODER_DECODER_BASE_H
#define QEC_DECODER_DECODER_BASE_H

#include <vector>

namespace qec
{

class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one shot.
     * @param defects Fired detector ids.
     * @return Predicted logical-observable flip.
     */
    virtual bool decode(const std::vector<int> &defects) const = 0;
};

} // namespace qec

#endif // QEC_DECODER_DECODER_BASE_H
