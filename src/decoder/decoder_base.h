/**
 * @file
 * Decoder interface. The paper evaluates with MWPM ("the gold
 * standard") but notes any decoder works; the harness accepts any
 * implementation of this interface so decoders can be compared under
 * identical leakage conditions.
 *
 * Decoders expose two entry points:
 *
 *  - decodeSparse(defects, count, workspace): the hot path. Consumes a
 *    sparse fired-detector list and a caller-owned DecodeWorkspace;
 *    implementations reuse the workspace's arrays so steady-state
 *    decoding performs no heap allocation and per-shot cost scales
 *    with the defect count.
 *  - decode(defects): convenience wrapper for one-off calls. Builds a
 *    throwaway workspace, so it stays thread-safe (no shared mutable
 *    state) at the price of per-call allocation.
 */

#ifndef QEC_DECODER_DECODER_BASE_H
#define QEC_DECODER_DECODER_BASE_H

#include <cstddef>
#include <vector>

#include "decoder/decode_workspace.h"

namespace qec
{

class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one shot, reusing caller-owned scratch state.
     * @param defects   Fired detector ids (no duplicates).
     * @param count     Number of fired detectors.
     * @param workspace Per-thread scratch, reused across calls.
     * @return Predicted logical-observable flip.
     */
    virtual bool decodeSparse(const int *defects, size_t count,
                              DecodeWorkspace &workspace) const = 0;

    /**
     * Decode one shot with a throwaway workspace. Thread-safe;
     * allocates, so hot loops should hold a workspace and call
     * decodeSparse instead.
     */
    bool
    decode(const std::vector<int> &defects) const
    {
        DecodeWorkspace workspace;
        return decodeSparse(defects.data(), defects.size(), workspace);
    }
};

} // namespace qec

#endif // QEC_DECODER_DECODER_BASE_H
