/**
 * @file
 * Decoder interface. The paper evaluates with MWPM ("the gold
 * standard") but notes any decoder works; the harness accepts any
 * implementation of this interface so decoders can be compared under
 * identical leakage conditions.
 *
 * Decoders expose two entry points:
 *
 *  - decodeSparse(defects, count, workspace): the hot path. Consumes a
 *    sparse fired-detector list and a caller-owned DecodeWorkspace;
 *    implementations reuse the workspace's arrays so steady-state
 *    decoding performs no heap allocation and per-shot cost scales
 *    with the defect count.
 *  - decode(defects): convenience wrapper for one-off calls. Builds a
 *    throwaway workspace, so it stays thread-safe (no shared mutable
 *    state) at the price of per-call allocation.
 */

#ifndef QEC_DECODER_DECODER_BASE_H
#define QEC_DECODER_DECODER_BASE_H

#include <cstddef>
#include <vector>

#include "decoder/decode_workspace.h"

namespace qec
{

class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one shot, reusing caller-owned scratch state.
     * @param defects   Fired detector ids (no duplicates).
     * @param count     Number of fired detectors.
     * @param workspace Per-thread scratch, reused across calls.
     * @return Predicted logical-observable flip.
     */
    virtual bool decodeSparse(const int *defects, size_t count,
                              DecodeWorkspace &workspace) const = 0;

    /**
     * Component-composition support probe and shot-level hop slack.
     *
     * A decoder that supports exact per-component composition returns
     * the extra hop margin that must be added to every component's
     * stored reach certificate (DecodeWorkspace::lastReachHops) when
     * those components are composed inside the shot described by
     * `defects`/`count`: the union-find decoder's growth depends only
     * on the component itself (slack 0), while the MWPM decoder's
     * Dijkstra pruning radius grows with the shot's largest
     * defect-to-boundary distance, so its slack is that distance in
     * hops. Returning a negative value (the default) declares
     * component decode unsupported and keeps the pipeline on the
     * whole-shot path — custom decoders stay exact without opting in.
     */
    virtual int
    componentSlackHops(const int *defects, size_t count) const
    {
        (void)defects;
        (void)count;
        return -1;
    }

    /**
     * Streaming-commit growth bound. A decoder that certifies "every
     * vertex a decode can touch lies within this many hops of some
     * defect of its own connected decode cluster — for ANY defect
     * set" returns that bound. The sliding-window driver uses it to
     * prove a finished cluster cannot be influenced by defects in
     * rows the window has not seen yet, and commits the cluster's
     * verdict early. Negative (the default): no bound certified —
     * the window driver defers every cluster to the final window,
     * which degenerates to one full-history decode (still exact,
     * but without the streaming memory bound).
     */
    virtual int
    windowCommitBound() const
    {
        return -1;
    }

    /**
     * Decode one shot with a throwaway workspace. Thread-safe;
     * allocates, so hot loops should hold a workspace and call
     * decodeSparse instead.
     */
    bool
    decode(const std::vector<int> &defects) const
    {
        DecodeWorkspace workspace;
        return decodeSparse(defects.data(), defects.size(), workspace);
    }
};

} // namespace qec

#endif // QEC_DECODER_DECODER_BASE_H
