#include "decoder/detector_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.h"
#include "code/builder.h"
#include "sim/frame_simulator.h"

namespace qec
{

double
DemEdge::probability(double p) const
{
    // XOR-combination of independent mechanisms: the edge fires iff an
    // odd number of its mechanisms fire.
    // P(odd) = (1 - prod(1 - 2 q_i)) / 2.
    double prod = 1.0;
    prod *= std::pow(1.0 - 2.0 * p, n1);
    prod *= std::pow(1.0 - 2.0 * (p / 3.0), n3);
    prod *= std::pow(1.0 - 2.0 * (p / 15.0), n15);
    return (1.0 - prod) / 2.0;
}

namespace
{

/** Probability class of a mechanism (shared error rate divisor). */
enum class ProbClass { P1, P3, P15 };

/** Signature of one mechanism: flipped detectors + observable. */
struct Signature
{
    std::vector<int> dets;
    bool obs = false;
};

uint64_t
edgeKey(int a, int b, bool obs)
{
    // a <= b after normalization; boundary (-1) stored as 0.
    return ((uint64_t)(a + 1) << 33) | ((uint64_t)(b + 1) << 1) |
           (obs ? 1 : 0);
}

/** Accumulates mechanisms into merged DEM edges. */
class EdgeAccumulator
{
  public:
    void
    add(int a, int b, bool obs, ProbClass cls, int count = 1)
    {
        if (a > b)
            std::swap(a, b);
        if (a == kBoundary && b == kBoundary)
            return;
        if (a == kBoundary)
            std::swap(a, b);  // keep the real detector in `a`
        auto [it, inserted] =
            index_.try_emplace(edgeKey(a, b, obs), edges_.size());
        if (inserted) {
            DemEdge edge;
            edge.a = a;
            edge.b = b;
            edge.obsFlip = obs;
            edges_.push_back(edge);
        }
        DemEdge &edge = edges_[it->second];
        switch (cls) {
          case ProbClass::P1: edge.n1 += count; break;
          case ProbClass::P3: edge.n3 += count; break;
          case ProbClass::P15: edge.n15 += count; break;
        }
    }

    void
    addEdgeCounts(const DemEdge &src, int a, int b)
    {
        if (src.n1)
            add(a, b, src.obsFlip, ProbClass::P1, src.n1);
        if (src.n3)
            add(a, b, src.obsFlip, ProbClass::P3, src.n3);
        if (src.n15)
            add(a, b, src.obsFlip, ProbClass::P15, src.n15);
    }

    /** True if (a, b) exists as an edge with the given observable. */
    bool
    has(int a, int b, bool obs) const
    {
        if (a > b)
            std::swap(a, b);
        if (a == kBoundary)
            std::swap(a, b);
        return index_.count(edgeKey(a, b, obs)) != 0;
    }

    std::vector<DemEdge> take() { return std::move(edges_); }

  private:
    std::unordered_map<uint64_t, size_t> index_;
    std::vector<DemEdge> edges_;
};

/**
 * How outcome flips of a base circuit map onto detectors and the
 * logical observable — the only protocol-specific piece of DEM
 * construction. Lattice walking (the rotated-surface-code builder)
 * and a compiled program's measure→detector map both lower to this.
 */
struct DemBindings
{
    int numQubits = 0;
    int stabsPerRound = 0;
    /** Per stabilizer: detector column, or -1 (wrong-basis checks). */
    std::vector<int> stabColumn;
    /** Per data qubit: detector columns its final readout toggles. */
    std::vector<std::vector<int>> dataColumns;
    /** Per data qubit: whether its final readout flips the logical. */
    std::vector<uint8_t> dataObs;
};

DemBindings
latticeDemBindings(const RotatedSurfaceCode &code, Basis basis)
{
    const StabType type = protectingStabType(basis);
    DemBindings b;
    b.numQubits = code.numQubits();
    b.stabsPerRound = code.numBasisStabilizers(basis);
    b.stabColumn.assign(code.numStabilizers(), -1);
    for (const auto &stab : code.stabilizers())
        if (stab.type == type)
            b.stabColumn[stab.index] = stab.basisIndex;
    b.dataColumns.resize(code.numData());
    for (int q = 0; q < code.numData(); ++q)
        for (int s : code.stabilizersOfData(q))
            if (code.stabilizer(s).type == type)
                b.dataColumns[q].push_back(
                    code.stabilizer(s).basisIndex);
    b.dataObs.assign(code.numData(), 0);
    for (int q : code.logicalSupport(basis))
        b.dataObs[q] = 1;
    return b;
}

DemBindings
programDemBindings(const CircuitProgram &prog)
{
    const IrDetectorMap &map = prog.detectors;
    DemBindings b;
    b.numQubits = prog.numQubits;
    b.stabsPerRound = map.cols;
    b.stabColumn = map.stabColumn;
    b.dataColumns.resize(prog.numData);
    for (int col = 0; col < map.cols; ++col) {
        for (int k = map.colSupportOffset[col];
             k < map.colSupportOffset[(size_t)col + 1]; ++k)
            b.dataColumns[map.colSupportData[k]].push_back(col);
    }
    b.dataObs.assign(prog.numData, 0);
    for (int q : map.observable)
        b.dataObs[q] = 1;
    return b;
}

/**
 * Enumerates all Pauli mechanisms of a base memory circuit and
 * produces their detector signatures by frame propagation.
 */
class Enumerator
{
  public:
    Enumerator(const DemBindings &bindings, Circuit circuit, int rounds)
        : bindings_(bindings), rounds_(rounds),
          nS_(bindings.stabsPerRound), circuit_(std::move(circuit)),
          sim_(bindings.numQubits, ErrorModel::noiseless(), Rng(0))
    {
    }

    /**
     * Visit every mechanism. The callback receives the source round
     * (final data block = `rounds`), the probability class, and the
     * signature.
     */
    template <typename Fn>
    void
    forEachMechanism(Fn &&fn)
    {
        int round = -1;
        for (size_t k = 0; k < circuit_.ops.size(); ++k) {
            const Op &op = circuit_.ops[k];
            switch (op.type) {
              case OpType::RoundStart:
                round = op.round;
                break;
              case OpType::DataNoise:
              case OpType::H:
                for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
                    fn(round, ProbClass::P3,
                       propagate(k, {{op.q0, p}}));
                }
                break;
              case OpType::Cnot:
                for (int pp = 1; pp < 16; ++pp) {
                    const Pauli pa = (Pauli)(pp & 3);
                    const Pauli pb = (Pauli)((pp >> 2) & 3);
                    fn(round, ProbClass::P15,
                       propagate(k, {{op.q0, pa}, {op.q1, pb}}));
                }
                break;
              case OpType::Reset:
                fn(round, ProbClass::P1, propagate(k, {{op.q0,
                                                        Pauli::X}}));
                break;
              case OpType::Measure:
              case OpType::MeasureX:
                fn(op.finalData ? rounds_ : round, ProbClass::P1,
                   measureFlip(op));
                break;
              case OpType::LeakageIswap:
                panic("base circuit must not contain DQLR ops");
            }
        }
    }

  private:
    /** Signature of flipping one measurement outcome. */
    Signature
    measureFlip(const Op &op)
    {
        flips_.clear();
        bool obs = false;
        if (op.finalData) {
            recordFinalFlip(op.q0, obs);
        } else {
            recordAncillaFlip(op.stab, op.round);
        }
        return finishSignature(obs);
    }

    /** Propagate Paulis injected after op k through the rest. */
    Signature
    propagate(size_t k,
              std::initializer_list<std::pair<int, Pauli>> inject)
    {
        sim_.reset();
        for (const auto &[q, p] : inject)
            sim_.injectPauli(q, p);
        const Op *ops = circuit_.ops.data();
        sim_.executeRange(ops + k + 1, ops + circuit_.ops.size());

        flips_.clear();
        bool obs = false;
        for (const auto &rec : sim_.record()) {
            if (!rec.flip)
                continue;
            if (rec.finalData)
                recordFinalFlip(rec.qubit, obs);
            else
                recordAncillaFlip(rec.stab, rec.round);
        }
        return finishSignature(obs);
    }

    /** Toggle the detectors affected by an ancilla outcome flip. */
    void
    recordAncillaFlip(int stab_index, int round)
    {
        const int col = bindings_.stabColumn[stab_index];
        if (col < 0)
            return;
        toggle(round * nS_ + col);
        toggle((round + 1) * nS_ + col);
    }

    /** Toggle detectors/observable for a final data outcome flip. */
    void
    recordFinalFlip(int data, bool &obs)
    {
        for (int col : bindings_.dataColumns[data])
            toggle(rounds_ * nS_ + col);
        if (bindings_.dataObs[data])
            obs = !obs;
    }

    void
    toggle(int det)
    {
        auto it = std::find(flips_.begin(), flips_.end(), det);
        if (it != flips_.end())
            flips_.erase(it);
        else
            flips_.push_back(det);
    }

    Signature
    finishSignature(bool obs)
    {
        Signature sig;
        sig.dets = flips_;
        std::sort(sig.dets.begin(), sig.dets.end());
        sig.obs = obs;
        return sig;
    }

    const DemBindings &bindings_;
    int rounds_;
    int nS_;
    Circuit circuit_;
    FrameSimulator sim_;
    std::vector<int> flips_;
};

/**
 * Collects signatures, decomposing >2-detector mechanisms against the
 * set of simple edges (Stim-style graph-like decomposition).
 */
class ModelAssembler
{
  public:
    void
    addSignature(const Signature &sig, ProbClass cls,
                 DetectorModel &stats)
    {
        if (sig.dets.empty() && !sig.obs)
            return;
        if (sig.dets.size() <= 2) {
            const int a = sig.dets.empty() ? kBoundary : sig.dets[0];
            const int b = sig.dets.size() < 2 ? kBoundary : sig.dets[1];
            acc_.add(a, b, sig.obs, cls);
            return;
        }
        pending_.push_back({sig, cls});
        ++stats.decomposedMechanisms;
    }

    void
    resolvePending(DetectorModel &stats)
    {
        for (const auto &[sig, cls] : pending_) {
            if (!tryDecompose(sig, cls))
                greedyDecompose(sig, cls, stats);
        }
        pending_.clear();
    }

    std::vector<DemEdge> take() { return acc_.take(); }

  private:
    struct Block
    {
        int a;
        int b;   // kBoundary for singletons
        bool obs;
    };

    /** Check a candidate block against known simple edges and pick an
     *  observable value for it; prefers obs=false. */
    bool
    blockExists(int a, int b, Block &out) const
    {
        for (bool obs : {false, true}) {
            if (acc_.has(a, b, obs)) {
                out = {a, b, obs};
                return true;
            }
        }
        return false;
    }

    bool
    tryDecompose(const Signature &sig, ProbClass cls)
    {
        const auto &d = sig.dets;
        std::vector<std::vector<std::pair<int, int>>> partitions;
        if (d.size() == 3) {
            partitions = {
                {{d[0], d[1]}, {d[2], kBoundary}},
                {{d[0], d[2]}, {d[1], kBoundary}},
                {{d[1], d[2]}, {d[0], kBoundary}},
                {{d[0], kBoundary}, {d[1], kBoundary},
                 {d[2], kBoundary}},
            };
        } else if (d.size() == 4) {
            partitions = {
                {{d[0], d[1]}, {d[2], d[3]}},
                {{d[0], d[2]}, {d[1], d[3]}},
                {{d[0], d[3]}, {d[1], d[2]}},
                {{d[0], d[1]}, {d[2], kBoundary}, {d[3], kBoundary}},
                {{d[0], d[2]}, {d[1], kBoundary}, {d[3], kBoundary}},
                {{d[0], d[3]}, {d[1], kBoundary}, {d[2], kBoundary}},
                {{d[1], d[2]}, {d[0], kBoundary}, {d[3], kBoundary}},
                {{d[1], d[3]}, {d[0], kBoundary}, {d[2], kBoundary}},
                {{d[2], d[3]}, {d[0], kBoundary}, {d[1], kBoundary}},
            };
        } else {
            return false;
        }

        for (const auto &partition : partitions) {
            std::vector<Block> blocks;
            bool ok = true;
            bool obs_total = false;
            for (const auto &[a, b] : partition) {
                Block block;
                if (!blockExists(a, b, block)) {
                    ok = false;
                    break;
                }
                blocks.push_back(block);
                obs_total ^= block.obs;
            }
            if (!ok)
                continue;
            // Fix up the observable parity on one block if possible.
            if (obs_total != sig.obs) {
                bool fixed = false;
                for (auto &block : blocks) {
                    if (acc_.has(block.a, block.b, !block.obs)) {
                        block.obs = !block.obs;
                        fixed = true;
                        break;
                    }
                }
                if (!fixed)
                    continue;
            }
            for (const auto &block : blocks)
                acc_.add(block.a, block.b, block.obs, cls);
            return true;
        }
        return false;
    }

    void
    greedyDecompose(const Signature &sig, ProbClass cls,
                    DetectorModel &stats)
    {
        ++stats.unmatchedDecompositions;
        // Pair consecutive detectors (they are sorted, so time/space
        // neighbours end up together); attach the observable to the
        // first block.
        bool obs = sig.obs;
        for (size_t i = 0; i < sig.dets.size(); i += 2) {
            const int a = sig.dets[i];
            const int b = (i + 1 < sig.dets.size()) ? sig.dets[i + 1]
                                                    : kBoundary;
            acc_.add(a, b, obs, cls);
            obs = false;
        }
    }

    EdgeAccumulator acc_;
    std::vector<std::pair<Signature, ProbClass>> pending_;
};

/** Shortest round count from which tiling is exact. */
constexpr int kTileShortRounds = 8;

DetectorModel
buildModelDirect(const DemBindings &bindings, Circuit circuit,
                 int rounds, Basis basis)
{
    DetectorModel model;
    model.rounds = rounds;
    model.basis = basis;
    model.stabsPerRound = bindings.stabsPerRound;

    Enumerator enumerator(bindings, std::move(circuit), rounds);
    ModelAssembler assembler;
    enumerator.forEachMechanism(
        [&](int, ProbClass cls, const Signature &sig) {
            assembler.addSignature(sig, cls, model);
        });
    assembler.resolvePending(model);
    model.edges = assembler.take();
    return model;
}

/** Tiled build: `short_circuit` is the kTileShortRounds-round image
 *  of the same round body. */
DetectorModel
buildModelTiled(const DemBindings &bindings, Circuit short_circuit,
                int rounds, Basis basis)
{
    // Enumerate a short circuit and tile its bulk round through time.
    // Head: mechanisms of round 0 (round-0 detectors are special).
    // Bulk: mechanisms of round 2 stand in for source rounds 1..R-3.
    // Tail: mechanisms of rounds R0-2, R0-1 and the final data block,
    // shifted by R - R0.
    const int r0 = kTileShortRounds;
    const int n_s = bindings.stabsPerRound;

    DetectorModel model;
    model.rounds = rounds;
    model.basis = basis;
    model.stabsPerRound = n_s;

    // Collect per-group signature lists from the short circuit.
    Enumerator enumerator(bindings, std::move(short_circuit), r0);
    ModelAssembler assembler;

    auto shift_sig = [&](const Signature &sig, int dr) {
        Signature shifted;
        shifted.obs = sig.obs;
        shifted.dets.reserve(sig.dets.size());
        for (int det : sig.dets)
            shifted.dets.push_back(det + dr * n_s);
        return shifted;
    };

    enumerator.forEachMechanism(
        [&](int src_round, ProbClass cls, const Signature &sig) {
            if (src_round == 0) {
                assembler.addSignature(sig, cls, model);
            } else if (src_round == 2) {
                for (int target = 1; target <= rounds - 3; ++target) {
                    assembler.addSignature(
                        shift_sig(sig, target - 2), cls, model);
                }
            } else if (src_round >= r0 - 2) {
                // Tail rounds and the final data block.
                assembler.addSignature(shift_sig(sig, rounds - r0),
                                       cls, model);
            }
            // Source rounds 1 and 3..r0-3 are redundant with the bulk
            // template and are skipped.
        });
    assembler.resolvePending(model);
    model.edges = assembler.take();
    return model;
}

} // namespace

DetectorModel
buildDetectorModelDirect(const RotatedSurfaceCode &code, int rounds,
                         Basis basis)
{
    return buildModelDirect(latticeDemBindings(code, basis),
                            buildMemoryCircuit(code, rounds, basis),
                            rounds, basis);
}

DetectorModel
buildDetectorModel(const RotatedSurfaceCode &code, int rounds,
                   Basis basis)
{
    if (rounds <= kTileShortRounds)
        return buildDetectorModelDirect(code, rounds, basis);
    return buildModelTiled(
        latticeDemBindings(code, basis),
        buildMemoryCircuit(code, kTileShortRounds, basis), rounds,
        basis);
}

DetectorModel
buildDetectorModelDirect(const CircuitProgram &prog)
{
    return buildModelDirect(programDemBindings(prog),
                            prog.baseCircuit(), prog.rounds,
                            prog.basis);
}

DetectorModel
buildDetectorModel(const CircuitProgram &prog)
{
    if (prog.rounds <= kTileShortRounds)
        return buildDetectorModelDirect(prog);
    return buildModelTiled(programDemBindings(prog),
                           prog.baseCircuit(kTileShortRounds),
                           prog.rounds, prog.basis);
}

} // namespace qec
