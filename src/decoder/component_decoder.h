/**
 * @file
 * Connected-component decomposition and exact per-component result
 * caching for the batch decode pipeline.
 *
 * At the error rates ERASER targets a shot's defects fall into small
 * clusters that are far apart on the detector graph. Whole-syndrome
 * dedup (SyndromeCache) only reuses a decode when the *entire* lane
 * repeats; components repeat far more often — a single measurement-
 * error defect pair recurs thousands of times per sweep — so the
 * pipeline splits each lane into components, decodes/caches each
 * component alone, and XOR-composes the per-component observable-flip
 * verdicts into the lane verdict.
 *
 * Exactness contract (never approximate):
 *  - ComponentGraph::split merges every defect pair it cannot PROVE
 *    > 2h hops apart on the detector adjacency (boundary edges
 *    excluded), so defects in different components are certified
 *    > 2h hops apart. The proof uses two exact distance lower
 *    bounds, shared with the composition guard: the time axis (each
 *    hop moves at most maxRowSpan rows, so dist >= ceil(row gap /
 *    maxRowSpan)) and the stab-quotient axis. The map detector ->
 *    stab index is a graph morphism onto the stab QUOTIENT graph
 *    (every detector-detector DEM edge projects to a quotient edge
 *    or a self-loop), so any detector path projects to a quotient
 *    walk of no greater length and dist(u, v) >= qdist(stab(u),
 *    stab(v)) exactly; the quotient has only stabsPerRound vertices,
 *    so the full all-pairs qdist table is precomputed (a few KB,
 *    cache-resident) — the tightest purely spatial bound available.
 *  - Every decode reports a hop-reach certificate: all graph state
 *    that decode (or its restriction inside a larger shot) can touch
 *    lies within `reach` hops of its defects. The union-find decoder
 *    measures its growth-layer count; the MWPM decoder derives a
 *    certificate from its boundary-distance pruning radius plus a
 *    shot-dependent slack (Decoder::componentSlackHops).
 *  - Composition is applied only when every pair of components is
 *    provably farther apart than the sum of its effective reaches:
 *    the touched regions are then pairwise disjoint balls with no
 *    connecting edge, the joint decode evolves as the disjoint union
 *    of the component-alone decodes, and the joint verdict is exactly
 *    the XOR of the component verdicts. The split itself certifies a
 *    2h+1 hop separation for every pair; pairs needing more are
 *    re-checked against the exact per-pair bounds above (a set
 *    distance is the min over cross pairs, so the component bound is
 *    the min over defect cross pairs), and pairs failing both are
 *    merged and re-decoded as one group — so verdicts are
 *    bit-identical to the uncached path by construction.
 *
 * Canonical (time-translated) keying: the bulk rows of a memory
 * experiment's DEM are tilings of one round, so a component in the
 * bulk is keyed by its defect list shifted to a canonical anchor row.
 * A canonical entry stores its reach and is replayed at another
 * placement only when the reach-ball fits inside the translation-
 * invariant row range at BOTH placements (the margin check) — the two
 * decodes then run on isomorphic subgraphs and are verdict-identical.
 * Components that do not fit are keyed by absolute detector ids.
 */

#ifndef QEC_DECODER_COMPONENT_DECODER_H
#define QEC_DECODER_COMPONENT_DECODER_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "decoder/decode_workspace.h"
#include "decoder/detector_model.h"

namespace qec
{

/** Knobs for the component split + cache stage of the pipeline. */
struct ComponentDecodeOptions
{
    /**
     * Use component-granular dispatch on the batched decode path
     * (requires a ComponentGraph; exact at any setting). Off by
     * default: the stage pays for itself when defects are sparse
     * enough that components repeat (low p, or small lattices), but
     * at the paper's headline density (d = 11, p = 1e-3 — ~50
     * defects per shot) the split + guard work and the merged-group
     * re-decodes cost more than the component-cache hits save, and
     * the plain whole-shot decodeSparse path is faster. Verdicts are
     * bit-identical either way; this knob is purely performance.
     */
    bool enabled = false;
    /**
     * Separation radius h of the decomposition: two defects share a
     * component unless the row / landmark-potential bounds prove them
     * > 2h hops apart, so cross-component defects are certified
     * >= 2h+1 hops apart. Pairs of components whose reach certificates
     * outrun that separation are re-checked (and if necessary merged)
     * by the exactness guard. Radius 2 is the sweet spot at ERASER
     * error rates: the union-find decoder's typical reach certificate
     * is 1-2 growth layers, so almost every pair clears the 2h+1
     * separation without guard work, while the split — a sorted
     * row-window pair scan, never a graph walk — stays a few us even
     * at this radius.
     */
    int hopRadius = 2;
    /**
     * Largest per-shot decoder slack (Decoder::componentSlackHops)
     * the component path accepts before handing the lane straight to
     * the whole-shot decode. Purely a performance gate — large-slack
     * decoders (MWPM's weight-ratio certificate) would fail the
     * exactness guard on most lanes and pay the split for nothing.
     */
    int maxShotSlack = 1;
    /** log2 of the component cache's slot count. */
    uint32_t tableLog2 = 15;
    /** Capacity of the component cache's defect arena (ints). */
    uint32_t arenaCapacity = 1u << 18;
    /** Key bulk components by their time-translated canonical lists
     *  (margin-checked; exact). Off = absolute ids only. */
    bool canonicalKeys = true;
};

/**
 * Immutable per-(DEM, p) companion of the decoders: detector-only
 * adjacency in flat CSR form for the component split, plus the row
 * geometry and translation-invariant (bulk) row range that canonical
 * cache keys rely on. Stateless after construction — share one
 * instance across threads; all mutable split state lives in the
 * caller's DecodeWorkspace.
 */
class ComponentGraph
{
  public:
    /** @param p Physical error rate; edges with probability(p) <= 0
     *  are dropped, matching both decoders' graphs. */
    ComponentGraph(const DetectorModel &dem, double p);

    /**
     * Split `defects` (any order, duplicates allowed) into components
     * certified pairwise > 2 * `hop_radius` hops apart: a defect pair
     * is merged unless a row-gap or landmark-potential bound proves
     * the separation. Fills the workspace's component arrays:
     * component c's defects are
     * ws.compDefects[ws.compOffsets[c] .. ws.compOffsets[c+1]) in the
     * ORIGINAL list order (composition bit-identity depends on it),
     * with row extents in ws.compMinRow / ws.compMaxRow. Components
     * are numbered by first appearance in the defect list. Returns
     * the component count.
     */
    int split(const int *defects, size_t count, int hop_radius,
              DecodeWorkspace &ws) const;

    int numDetectors() const { return numDets_; }
    int stabsPerRound() const { return stabsPerRound_; }
    /** Detector rows (rounds + 1). */
    int rows() const { return rows_; }
    int rowOf(int det) const { return det / stabsPerRound_; }
    /** Max row distance spanned by any edge (>= 1). */
    int maxRowSpan() const { return maxRowSpan_; }
    /** Translation-invariant row range [bulkLo, bulkHi]: every row in
     *  it has an identical anchored-edge signature, so defect lists
     *  shifted within it see isomorphic graphs. */
    int bulkLo() const { return bulkLo_; }
    int bulkHi() const { return bulkHi_; }
    bool bulkValid() const { return bulkHi_ > bulkLo_; }

    /**
     * Largest reach certificate a canonical cache entry may carry and
     * still be replayed for a component spanning rows
     * [min_row, max_row]: the (reach + 1)-hop ball (plus incident
     * edges) must stay inside the bulk range. Negative = ineligible.
     */
    int
    canonicalReachLimit(int min_row, int max_row) const
    {
        if (!bulkValid() || min_row < bulkLo_ || max_row > bulkHi_)
            return -1;
        const int margin =
            std::min(min_row - bulkLo_, bulkHi_ - max_row);
        return margin / maxRowSpan_ - 2;
    }

    /** Canonical key shift: subtracted from every defect id so the
     *  component anchors at row bulkLo. */
    int
    canonicalShift(int min_row) const
    {
        return (min_row - bulkLo_) * stabsPerRound_;
    }

    /** quotientDistance value meaning "provably no connecting path"
     *  (the quotient graph is disconnected between the two stabs). */
    static constexpr int kQuotientFar = 1 << 20;

    /**
     * Exact shortest-path distance between two stab indices on the
     * stab quotient graph — a lower bound on the hop distance between
     * any two detectors with those stab indices (see the file-top
     * morphism argument). Returns 0 (no bound) when the table was too
     * large to precompute, kQuotientFar when provably disconnected.
     */
    int
    quotientDistance(int sa, int sb) const
    {
        if (qdist_.empty())
            return 0;
        const uint8_t q =
            qdist_[(size_t)sa * (size_t)stabsPerRound_ + (size_t)sb];
        return q == 0xff ? kQuotientFar : (int)q;
    }

    /**
     * Lower bound on the hop distance between defect `da` and defect
     * `db`: the max of the row-gap bound and the quotient distance.
     */
    int
    defectDistanceLowerBound(int da, int db) const
    {
        const int row_gap = std::abs(rowOf(da) - rowOf(db));
        const int row_lb =
            (row_gap + maxRowSpan_ - 1) / maxRowSpan_;
        return std::max(row_lb,
                        quotientDistance(da % stabsPerRound_,
                                         db % stabsPerRound_));
    }

    /**
     * Lower bound on the hop distance between any defect of component
     * `ci` and any defect of component `cj` (components of the latest
     * split recorded in `ws`, BEFORE any guard merging): a set
     * distance is the min over cross pairs, so this is the min of
     * defectDistanceLowerBound over the two defect sublists. Returns
     * 0 when no axis separates some pair.
     */
    int pairDistanceLowerBound(const DecodeWorkspace &ws, int ci,
                               int cj) const;

    /**
     * Exact hop distance between two detectors on the detector
     * adjacency (boundary edges excluded), capped at `cap`: returns
     * cap + 1 when farther apart or disconnected. Plain BFS that
     * allocates — validation/test helper, never on the decode path
     * (the decode path uses only the O(1) lower bounds above).
     */
    int hopDistance(int a, int b, int cap) const;

  private:
    int numDets_ = 0;
    int stabsPerRound_ = 1;
    int rows_ = 0;
    int maxRowSpan_ = 1;
    int bulkLo_ = 0;
    int bulkHi_ = -1;
    /** All-pairs stab-quotient distances, row-major
     *  [stabsPerRound][stabsPerRound], 0xff = disconnected (empty
     *  when the table would be unreasonably large). */
    std::vector<uint8_t> qdist_;
    /** Detector-to-detector adjacency (boundary edges excluded):
     *  neighbours of d live at csrAdj_[csrOffsets_[d] ..
     *  csrOffsets_[d+1]). Only hopDistance walks it. */
    std::vector<int> csrOffsets_;
    std::vector<int> csrAdj_;
};

/** One flush of the component cache, for occupancy diagnostics. */
struct ComponentCacheFlush
{
    uint64_t hits = 0;       ///< Hits since the previous flush.
    uint64_t misses = 0;     ///< Misses since the previous flush.
    uint64_t evicted = 0;    ///< Entries dropped by this flush.
    double occupancy = 0.0;  ///< Slot occupancy when flushed.
};

struct ComponentCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t flushes = 0;
    uint64_t evictions = 0;        ///< Total entries dropped.
    uint64_t canonicalHits = 0;    ///< Hits on translated keys.
    uint64_t marginRejects = 0;    ///< Canonical hits vetoed by reach.
    ComponentCacheFlush lastFlush; ///< Most recent flush snapshot.

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0 : (double)hits / (double)total;
    }
};

/**
 * Open-addressed exact cache of per-component verdicts. Entries store
 * the (canonically shifted) defect list, the observable-flip verdict,
 * and the decode's hop-reach certificate. Hits compare the full
 * stored list, so collisions can never replay a wrong verdict; when
 * either backing array fills the cache flushes wholesale (counted,
 * with occupancy recorded) — steady state allocates nothing.
 */
class ComponentCache
{
  public:
    explicit ComponentCache(const ComponentDecodeOptions &options);

    /**
     * Look up a component. The key is the defect list with `shift`
     * subtracted from every id; `canonical` selects the key namespace
     * (mixed into the hash so shifted and absolute keys never
     * collide). A canonical hit additionally requires the stored
     * reach certificate <= `max_reach` (the current placement's
     * margin) — rejects count as misses. On hit fills `verdict` and
     * `reach`.
     */
    bool lookup(const int *defects, size_t count, int shift,
                bool canonical, int max_reach, bool &verdict,
                int &reach);

    /** Record a decoded component under the same keying rules. */
    void insert(const int *defects, size_t count, int shift,
                bool canonical, bool verdict, int reach);

    const ComponentCacheStats & stats() const { return stats_; }
    void resetStats() { stats_ = {}; }
    size_t size() const { return used_; }

  private:
    struct Slot
    {
        uint64_t hash = 0;
        uint32_t offset = 0;
        uint32_t count = 0;
        uint16_t reach = 0;
        uint8_t verdict = 0;
        uint8_t flags = 0;   ///< bit0 used, bit1 canonical.
    };

    void flush();

    ComponentCacheStats stats_;
    uint64_t hitsAtFlush_ = 0;
    uint64_t missesAtFlush_ = 0;
    std::vector<Slot> slots_;
    std::vector<int> arena_;
    uint32_t arenaCapacity_ = 0;
    size_t used_ = 0;
    uint64_t mask_ = 0;
};

} // namespace qec

#endif // QEC_DECODER_COMPONENT_DECODER_H
