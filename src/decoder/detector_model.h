/**
 * @file
 * Detector error model (DEM) for memory experiments.
 *
 * Detectors are parities of stabilizer measurement flips that are
 * deterministically zero in a noiseless run:
 *   det(s, 0)       = m[s][0]                       (round 0)
 *   det(s, r)       = m[s][r] xor m[s][r-1]         (1 <= r < R)
 *   det(s, R)       = recon[s] xor m[s][R-1]        (final round)
 * where recon[s] is the stabilizer value reconstructed from the final
 * transversal data measurement, and s ranges over stabilizers of the
 * type protecting the memory basis.
 *
 * The builder enumerates every Pauli-noise mechanism of the base
 * (no-LRC) circuit, propagates it through the frame simulator, and
 * records which detectors (and whether the logical observable) flip.
 * Mechanisms with identical signatures are merged, keeping counts per
 * probability class so edge probabilities can be re-evaluated for any
 * physical error rate p without re-enumeration. For long experiments
 * the bulk rounds are built once and tiled through time; tests assert
 * tiled == direct.
 *
 * Leakage mechanisms are deliberately NOT represented: the paper's
 * decoder is leakage-unaware, and so is this one.
 */

#ifndef QEC_DECODER_DETECTOR_MODEL_H
#define QEC_DECODER_DETECTOR_MODEL_H

#include <vector>

#include "code/circuit_ir.h"
#include "code/rotated_surface_code.h"
#include "code/types.h"

namespace qec
{

/** Index of the virtual boundary in DEM edges. */
constexpr int kBoundary = -1;

/**
 * One weighted decoding-graph edge. Mechanism counts are kept per
 * probability class: n1 at prob p (measurement flips, reset errors),
 * n3 at p/3 (single-qubit depolarizing components), n15 at p/15
 * (two-qubit depolarizing components).
 */
struct DemEdge
{
    int a = kBoundary;      ///< Detector id (always valid).
    int b = kBoundary;      ///< Detector id or kBoundary.
    bool obsFlip = false;   ///< Whether the mechanism flips the logical.
    int n1 = 0;
    int n3 = 0;
    int n15 = 0;

    /** XOR-combined probability that this edge fires, given p. */
    double probability(double p) const;
};

/** The full detector error model of one (code, rounds, basis) config. */
struct DetectorModel
{
    int rounds = 0;             ///< R: syndrome extraction rounds.
    int stabsPerRound = 0;      ///< Stabilizers of the protected type.
    Basis basis = Basis::Z;

    std::vector<DemEdge> edges;

    /** Mechanisms whose signature needed >2-detector decomposition. */
    int decomposedMechanisms = 0;
    /** Mechanisms whose decomposition had no exact match (paired
     *  greedily); expected to be zero for surface-code circuits. */
    int unmatchedDecompositions = 0;

    /** Total detector count: (rounds + 1) * stabsPerRound. */
    int
    numDetectors() const
    {
        return (rounds + 1) * stabsPerRound;
    }

    int
    detectorId(int basis_stab, int round) const
    {
        return round * stabsPerRound + basis_stab;
    }
    int detectorRound(int det) const { return det / stabsPerRound; }
    int detectorStab(int det) const { return det % stabsPerRound; }
};

/**
 * Build the DEM for `rounds` rounds of the given code and memory
 * basis. Uses direct enumeration for short experiments and
 * time-translation tiling for long ones (identical results).
 */
DetectorModel buildDetectorModel(const RotatedSurfaceCode &code,
                                 int rounds, Basis basis);

/** Direct (non-tiled) enumeration, exposed for equivalence tests. */
DetectorModel buildDetectorModelDirect(const RotatedSurfaceCode &code,
                                       int rounds, Basis basis);

/**
 * Build the DEM of a compiled circuit program from its own
 * measure→detector/observable map (no lattice walking): the enumerator
 * propagates mechanisms through the program's base circuit and routes
 * outcome flips through `prog.detectors`. For surface-memory programs
 * this reproduces the code-based builder exactly; for new protocol
 * families (repetition memory) it is the only builder.
 */
DetectorModel buildDetectorModel(const CircuitProgram &prog);

/** Direct (non-tiled) program enumeration, for equivalence tests. */
DetectorModel buildDetectorModelDirect(const CircuitProgram &prog);

} // namespace qec

#endif // QEC_DECODER_DETECTOR_MODEL_H
