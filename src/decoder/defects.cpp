#include "decoder/defects.h"

#include "base/logging.h"
#include "decoder/sparse_syndrome.h"

namespace qec
{

ShotOutcome
extractDefects(const RotatedSurfaceCode &code, Basis basis, int rounds,
               const std::vector<MeasureRecord> &record)
{
    const StabType type = protectingStabType(basis);
    const int n_s = code.numBasisStabilizers(basis);

    // m[s][r] flips for protected-basis stabilizers; final data flips.
    std::vector<uint8_t> mflip((size_t)n_s * rounds, 0);
    std::vector<uint8_t> data_flip(code.numData(), 0);

    for (const auto &rec : record) {
        if (rec.finalData) {
            data_flip[rec.qubit] ^= rec.flip ? 1 : 0;
            continue;
        }
        if (rec.stab < 0)
            continue;
        const auto &stab = code.stabilizer(rec.stab);
        if (stab.type != type)
            continue;
        panicIf(rec.round < 0 || rec.round >= rounds,
                "measurement round out of range");
        mflip[(size_t)rec.round * n_s + stab.basisIndex] ^=
            rec.flip ? 1 : 0;
    }

    ShotOutcome out;
    for (int s = 0; s < n_s; ++s) {
        uint8_t prev = 0;
        for (int r = 0; r < rounds; ++r) {
            const uint8_t cur = mflip[(size_t)r * n_s + s];
            if (cur ^ prev)
                out.defects.push_back(r * n_s + s);
            prev = cur;
        }
        // Final row: reconstruct the stabilizer from data measurements.
        const int stab_index = code.basisStabilizers(basis)[s];
        uint8_t recon = 0;
        for (int q : code.stabilizer(stab_index).support)
            recon ^= data_flip[q];
        if (recon ^ prev)
            out.defects.push_back(rounds * n_s + s);
    }

    for (int q : code.logicalSupport(basis))
        out.observableFlip ^= (data_flip[q] != 0);
    return out;
}

std::vector<ShotOutcome>
extractDefectsBatched(const RotatedSurfaceCode &code, Basis basis,
                      int rounds,
                      const std::vector<BatchMeasureRecord> &record,
                      int num_lanes)
{
    // Materialized per-lane view of the flat sparse extraction; hot
    // paths consume the BatchSyndrome directly instead.
    SparseSyndromeExtractor extractor;
    BatchSyndrome syndrome;
    extractor.extract(code, basis, rounds, record, num_lanes,
                      syndrome);

    std::vector<ShotOutcome> out(num_lanes);
    for (int l = 0; l < num_lanes; ++l) {
        out[l].defects.assign(syndrome.laneBegin(l),
                              syndrome.laneBegin(l) +
                                  syndrome.laneSize(l));
        out[l].observableFlip = syndrome.laneObservable(l);
    }
    return out;
}

} // namespace qec
