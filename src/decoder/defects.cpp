#include "decoder/defects.h"

#include "base/logging.h"

namespace qec
{

ShotOutcome
extractDefects(const RotatedSurfaceCode &code, Basis basis, int rounds,
               const std::vector<MeasureRecord> &record)
{
    const StabType type = protectingStabType(basis);
    const int n_s = code.numBasisStabilizers(basis);

    // m[s][r] flips for protected-basis stabilizers; final data flips.
    std::vector<uint8_t> mflip((size_t)n_s * rounds, 0);
    std::vector<uint8_t> data_flip(code.numData(), 0);

    for (const auto &rec : record) {
        if (rec.finalData) {
            data_flip[rec.qubit] ^= rec.flip ? 1 : 0;
            continue;
        }
        if (rec.stab < 0)
            continue;
        const auto &stab = code.stabilizer(rec.stab);
        if (stab.type != type)
            continue;
        panicIf(rec.round < 0 || rec.round >= rounds,
                "measurement round out of range");
        mflip[(size_t)rec.round * n_s + stab.basisIndex] ^=
            rec.flip ? 1 : 0;
    }

    ShotOutcome out;
    for (int s = 0; s < n_s; ++s) {
        uint8_t prev = 0;
        for (int r = 0; r < rounds; ++r) {
            const uint8_t cur = mflip[(size_t)r * n_s + s];
            if (cur ^ prev)
                out.defects.push_back(r * n_s + s);
            prev = cur;
        }
        // Final row: reconstruct the stabilizer from data measurements.
        const int stab_index = code.basisStabilizers(basis)[s];
        uint8_t recon = 0;
        for (int q : code.stabilizer(stab_index).support)
            recon ^= data_flip[q];
        if (recon ^ prev)
            out.defects.push_back(rounds * n_s + s);
    }

    for (int q : code.logicalSupport(basis))
        out.observableFlip ^= (data_flip[q] != 0);
    return out;
}

std::vector<ShotOutcome>
extractDefectsBatched(const RotatedSurfaceCode &code, Basis basis,
                      int rounds,
                      const std::vector<BatchMeasureRecord> &record,
                      int num_lanes)
{
    const StabType type = protectingStabType(basis);
    const int n_s = code.numBasisStabilizers(basis);
    const uint64_t live = laneMask(num_lanes);

    // Word-wise analogue of extractDefects: one XOR folds a
    // measurement into all lanes at once. Record flips are zero
    // outside their lane mask, so plain XOR is safe.
    std::vector<uint64_t> mflip((size_t)n_s * rounds, 0);
    std::vector<uint64_t> data_flip(code.numData(), 0);

    for (const auto &rec : record) {
        if (rec.finalData) {
            data_flip[rec.qubit] ^= rec.flips;
            continue;
        }
        if (rec.stab < 0)
            continue;
        const auto &stab = code.stabilizer(rec.stab);
        if (stab.type != type)
            continue;
        panicIf(rec.round < 0 || rec.round >= rounds,
                "measurement round out of range");
        mflip[(size_t)rec.round * n_s + stab.basisIndex] ^= rec.flips;
    }

    std::vector<ShotOutcome> out(num_lanes);
    for (int s = 0; s < n_s; ++s) {
        uint64_t prev = 0;
        for (int r = 0; r < rounds; ++r) {
            const uint64_t cur = mflip[(size_t)r * n_s + s];
            uint64_t events = (cur ^ prev) & live;
            while (events) {
                const int l = __builtin_ctzll(events);
                events &= events - 1;
                out[l].defects.push_back(r * n_s + s);
            }
            prev = cur;
        }
        // Final row: reconstruct the stabilizer from data measurements.
        const int stab_index = code.basisStabilizers(basis)[s];
        uint64_t recon = 0;
        for (int q : code.stabilizer(stab_index).support)
            recon ^= data_flip[q];
        uint64_t events = (recon ^ prev) & live;
        while (events) {
            const int l = __builtin_ctzll(events);
            events &= events - 1;
            out[l].defects.push_back(rounds * n_s + s);
        }
    }

    uint64_t observable = 0;
    for (int q : code.logicalSupport(basis))
        observable ^= data_flip[q];
    for (int l = 0; l < num_lanes; ++l)
        out[l].observableFlip = (observable >> l) & 1;
    return out;
}

} // namespace qec
