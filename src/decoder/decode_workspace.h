/**
 * @file
 * Reusable per-thread decoder scratch state.
 *
 * Every vector a decoder needs during decode() lives here instead of on
 * the decode stack, so a caller that keeps one DecodeWorkspace per
 * thread pays for allocation and zero-initialization once and then
 * decodes allocation-free in steady state. Validity of per-vertex /
 * per-edge entries is tracked with epoch stamps: bumping the epoch
 * invalidates the whole workspace in O(1), so nothing is cleared
 * between shots and per-shot cost stays proportional to the defect
 * count, not the lattice size (the tesseract / sparse-shot decoding
 * idiom).
 *
 * One workspace serves both decoder implementations; the union-find
 * fields and the MWPM fields are disjoint, and the epoch counters are
 * shared monotone counters so interleaved use is safe.
 */

#ifndef QEC_DECODER_DECODE_WORKSPACE_H
#define QEC_DECODER_DECODE_WORKSPACE_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "decoder/matching.h"

namespace qec
{

/**
 * Scratch state reused across decode calls. Not thread-safe: use one
 * instance per thread. Sized lazily by the decoders on first use.
 */
struct DecodeWorkspace
{
    /** Bumped once per decode call; stamps == epoch are valid. */
    uint64_t epoch = 0;

    // Lightweight perf diagnostics, accumulated across decode calls.
    uint64_t statSettledNodes = 0;   ///< MWPM Dijkstra settles.
    uint64_t statMatchedVerts = 0;   ///< Blossom vertices solved.
    uint64_t statComponents = 0;     ///< Matching components seen.

    /**
     * Hop-reach certificate of the last decodeSparse call: every
     * vertex that decode — or its restriction inside a larger shot
     * (MWPM adds Decoder::componentSlackHops for the enclosing shot)
     * — can touch lies within this many hops of the call's defects.
     * The component composition guard sums certificates pairwise.
     */
    int lastReachHops = 0;

    /**
     * When set, decodeSparse additionally appends its chosen
     * correction elements to `corrections`: per element the two
     * detector endpoints (-1 = the boundary) and whether it flips the
     * logical observable. The union-find decoder records each peeled
     * edge; the MWPM decoder records each matched pair / boundary
     * match. Consumed by the sliding-window driver's commit/carry
     * bookkeeping.
     */
    bool recordCorrections = false;
    struct CorrectionEdge
    {
        int a;         ///< Detector id or -1 (boundary).
        int b;         ///< Detector id or -1 (boundary).
        uint8_t obs;   ///< Logical-observable flip parity.
    };
    std::vector<CorrectionEdge> corrections;

    /**
     * When set, decodeSparse additionally reports the decode's grown
     * clusters: `clusters[i]` holds cluster i's touched-vertex id
     * extents and the XOR of the observable flips of its correction
     * edges, and `clusterOf[v]` maps every touched vertex to its
     * cluster index (clusters that interact only through the shared
     * boundary vertex are reported separately — their evolutions are
     * independent). The sliding-window driver commits whole clusters
     * at a time with this. Off by default: the label pass costs one
     * extra sweep over the touched vertices.
     */
    bool recordClusters = false;
    struct ClusterInfo
    {
        int minVertex;      ///< Smallest touched detector id.
        int maxVertex;      ///< Largest touched detector id.
        uint8_t obsParity;  ///< XOR of the cluster's correction obs.
    };
    std::vector<ClusterInfo> clusters;
    /** Per-vertex cluster index (valid for vertices touched by the
     *  last recordClusters decode; -1 on the boundary vertex). */
    std::vector<int> clusterOf;

    // ----------------------------------------- component-split state
    // ComponentGraph::split scratch: the by-id defect permutation, the
    // defect-index union-find, and the grouped per-component output
    // consumed by BatchDecoder.
    std::vector<int> cgQueue;
    std::vector<int> cgParent;
    std::vector<int> cgLabel;
    /** Component c's defects (original list order) live at
     *  compDefects[compOffsets[c] .. compOffsets[c+1]). */
    std::vector<int> compOffsets;
    std::vector<int> compDefects;
    std::vector<int> compCursor;
    std::vector<int> compMinRow;
    std::vector<int> compMaxRow;
    /** Per-component decode outputs (BatchDecoder scratch). */
    std::vector<int> compReach;
    std::vector<uint8_t> compVerdict;
    /** Component-level union-find for guard-driven pair merging. */
    std::vector<int> compGroup;
    /** Merged-group defect list scratch (original defect order). */
    std::vector<int> compMerged;

    // ------------------------------------------------ union-find state
    // Per-vertex entries are valid only when ufNodeStamp[v] ==
    // ufEpoch8; a vertex is lazily initialized the first time a decode
    // touches it. One 24-byte struct per vertex (not struct-of-arrays):
    // lazy-touching a vertex then costs one cache line, and the
    // growth/merge walks are cache-miss-bound on exactly these
    // accesses. Flags are packed into one byte so the struct stays at
    // 24 bytes; the validity stamp lives in the separate byte array
    // below, keeping it out of every touch's write traffic.
    struct UfNode
    {
        int parent;
        // Cluster frontiers as intrusive singly-linked lists: O(1)
        // concat on merge, no per-cluster vectors.
        int fHead;
        int fTail;
        int fSize;
        int fNext;
        uint8_t flags;
    };
    static constexpr uint8_t kUfOdd = 1;
    static constexpr uint8_t kUfBoundary = 2;
    static constexpr uint8_t kUfInCluster = 4;
    static constexpr uint8_t kUfExpanded = 8;
    std::vector<UfNode> ufNode;
    /**
     * Byte-epoch validity stamps: vertex v's UfNode (and peel arrays)
     * are valid iff ufNodeStamp[v] == ufEpoch8, edge e is grown this
     * call iff ufEdgeStamp[e] == ufEpoch8. One BYTE per entry — both
     * arrays stay L1-resident, and the growth/peel passes are bound by
     * exactly these random loads. The epoch wraps at 255: the wrap
     * clears both arrays once, so stale bytes can never alias a live
     * epoch.
     */
    std::vector<uint8_t> ufNodeStamp;
    std::vector<uint8_t> ufEdgeStamp;
    uint8_t ufEpoch8 = 0;
    std::vector<int> ufActive;
    std::vector<int> ufNextActive;
    /** Every edge grown this call with its endpoints and packed
     *  (edge id << 1 | obs) word, recorded while they are hot in
     *  growth's registers — the peel pass builds its compact adjacency
     *  from this list instead of re-walking CSR rows (whose
     *  mostly-ungrown slots dominated peel time). */
    struct GrownEdge
    {
        int u;
        int v;
        int eo;
    };
    std::vector<GrownEdge> ufGrown;
    // Peeling state (valid for vertices touched this call; initialized
    // by touch(), peelDeg maintained inline by growth). Parallel small
    // arrays instead of a struct: each stays L1-resident.
    std::vector<int> peelDeg;      ///< Grown degree; <0 = BFS-visited.
    std::vector<int> peelCursor;   ///< Compact-adjacency fill cursor.
    /** BFS parent: (parent vertex << 32) | packed parent-edge word;
     *  -1 = tree root. */
    std::vector<int64_t> peelParent;
    std::vector<uint8_t> peelCharge;
    /** Vertices touched this call (the grown region), in touch order. */
    std::vector<int> peelOrder;
    std::vector<int> peelQueue;
    /** Compact grown-edge adjacency: (neighbor vertex, packed edge
     *  word). */
    std::vector<std::pair<int, int>> peelAdj;

    // ------------------------------------------------------ MWPM state
    // Per-detector multi-source Dijkstra state, valid iff
    // mwStamp[d] == epoch.
    std::vector<uint64_t> mwStamp;
    std::vector<double> mwDist;
    std::vector<uint8_t> mwObs;
    std::vector<uint8_t> mwSettled;
    /** Owning defect index (nearest defect) per touched detector. */
    std::vector<int> mwOwner;
    /** Binary heap storage for the Dijkstra priority queue. */
    std::vector<std::pair<double, int>> mwHeap;

    /** Candidate defect-defect path (i < j after normalization). */
    struct Cand
    {
        int i;
        int j;
        double w;
        uint8_t obs;
    };
    std::vector<Cand> mwCands;
    std::vector<MatchEdge> mwEdges;
    /** Per-defect boundary route (distance, observable parity). */
    std::vector<double> mwBDist;
    std::vector<uint8_t> mwBObs;
    /** Matching output, reused across calls. */
    std::vector<int> mwPartner;
    /** Connected-component split of the matching instance. */
    std::vector<int> mwCompParent;
    std::vector<std::pair<int, int>> mwCompKeys;  ///< (root, defect).
    /** Candidates bucketed by component: (root, candidate index). */
    std::vector<std::pair<int, int>> mwCandByComp;
    std::vector<int> mwLocalIndex;
    /** Persistent blossom-solver scratch: MWPM matching reuses it
     *  across calls, so steady-state decode allocates nothing. */
    MatcherScratch matcher;

    /** Size the union-find arrays for a graph with `num_vertices`
     *  vertices (detectors + boundary) and `num_edges` edges. */
    void
    ensureUf(size_t num_vertices, size_t num_edges)
    {
        if (ufNode.size() >= num_vertices &&
            ufEdgeStamp.size() >= num_edges)
            return;
        ufNode.resize(num_vertices, UfNode{});
        // Byte-epoch restart: clear BOTH stamp arrays (a resize keeps
        // old bytes, which could alias the restarted epoch sequence).
        ufNodeStamp.assign(num_vertices, 0);
        ufEdgeStamp.assign(num_edges, 0);
        ufEpoch8 = 0;
        ufActive.reserve(num_vertices);
        ufNextActive.reserve(num_vertices);
        ufGrown.reserve(num_edges);
        peelDeg.resize(num_vertices, 0);
        peelCursor.resize(num_vertices, 0);
        peelParent.resize(num_vertices, 0);
        peelCharge.resize(num_vertices, 0);
        peelOrder.reserve(num_vertices);
        peelQueue.reserve(num_vertices);
        peelAdj.reserve(2 * num_edges);
        clusterOf.resize(num_vertices, -1);
    }

    /** Size the component-split arrays for a defect list of
     *  `num_defects`. */
    void
    ensureComponents(size_t num_defects)
    {
        if (cgParent.size() < num_defects) {
            cgParent.resize(num_defects);
            cgLabel.resize(num_defects);
            cgQueue.reserve(num_defects);
        }
    }

    /** Size the MWPM arrays for `num_detectors` detectors. */
    void
    ensureMwpm(size_t num_detectors)
    {
        if (mwStamp.size() >= num_detectors)
            return;
        mwStamp.resize(num_detectors, 0);
        mwDist.resize(num_detectors);
        mwObs.resize(num_detectors);
        mwSettled.resize(num_detectors);
        mwOwner.resize(num_detectors);
        mwHeap.reserve(num_detectors);
    }

    /** Total bytes owned by the workspace (tests pin that this stops
     *  growing once decode reaches steady state). */
    size_t
    footprintBytes() const
    {
        auto bytes = [](const auto &v) {
            return v.capacity() *
                   sizeof(typename std::remove_reference_t<
                          decltype(v)>::value_type);
        };
        return bytes(ufNode) + bytes(ufNodeStamp) +
               bytes(ufEdgeStamp) + bytes(ufActive) +
               bytes(ufNextActive) + bytes(ufGrown) +
               bytes(peelDeg) + bytes(peelCursor) + bytes(peelParent) +
               bytes(peelCharge) + bytes(peelAdj) +
               bytes(peelOrder) + bytes(peelQueue) + bytes(corrections) +
               bytes(clusters) + bytes(clusterOf) +
               bytes(cgQueue) + bytes(cgParent) + bytes(cgLabel) +
               bytes(compOffsets) + bytes(compDefects) +
               bytes(compCursor) + bytes(compMinRow) +
               bytes(compMaxRow) + bytes(compGroup) +
               bytes(compMerged) + bytes(compReach) +
               bytes(compVerdict) + bytes(mwStamp) + bytes(mwDist) +
               bytes(mwObs) + bytes(mwSettled) + bytes(mwOwner) +
               bytes(mwHeap) + bytes(mwCands) +
               bytes(mwEdges) + bytes(mwBDist) + bytes(mwBObs) +
               bytes(mwPartner) + bytes(mwCompParent) +
               bytes(mwCompKeys) + bytes(mwCandByComp) +
               bytes(mwLocalIndex) + matcher.footprintBytes();
    }
};

} // namespace qec

#endif // QEC_DECODER_DECODE_WORKSPACE_H
