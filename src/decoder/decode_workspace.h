/**
 * @file
 * Reusable per-thread decoder scratch state.
 *
 * Every vector a decoder needs during decode() lives here instead of on
 * the decode stack, so a caller that keeps one DecodeWorkspace per
 * thread pays for allocation and zero-initialization once and then
 * decodes allocation-free in steady state. Validity of per-vertex /
 * per-edge entries is tracked with epoch stamps: bumping the epoch
 * invalidates the whole workspace in O(1), so nothing is cleared
 * between shots and per-shot cost stays proportional to the defect
 * count, not the lattice size (the tesseract / sparse-shot decoding
 * idiom).
 *
 * One workspace serves both decoder implementations; the union-find
 * fields and the MWPM fields are disjoint, and the epoch counters are
 * shared monotone counters so interleaved use is safe.
 */

#ifndef QEC_DECODER_DECODE_WORKSPACE_H
#define QEC_DECODER_DECODE_WORKSPACE_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "decoder/matching.h"

namespace qec
{

/**
 * Scratch state reused across decode calls. Not thread-safe: use one
 * instance per thread. Sized lazily by the decoders on first use.
 */
struct DecodeWorkspace
{
    /** Bumped once per decode call; stamps == epoch are valid. */
    uint64_t epoch = 0;

    // Lightweight perf diagnostics, accumulated across decode calls.
    uint64_t statSettledNodes = 0;   ///< MWPM Dijkstra settles.
    uint64_t statMatchedVerts = 0;   ///< Blossom vertices solved.
    uint64_t statComponents = 0;     ///< Matching components seen.

    // ------------------------------------------------ union-find state
    // Per-vertex entries are valid only when node.stamp == epoch; a
    // vertex is lazily initialized the first time a decode touches it.
    // One struct per vertex (not struct-of-arrays): lazy-touching a
    // vertex then costs one cache line instead of eleven, and the
    // growth/merge walks are cache-miss-bound on exactly these
    // accesses.
    struct UfNode
    {
        uint64_t stamp;
        int parent;
        // Cluster frontiers as intrusive singly-linked lists: O(1)
        // concat on merge, no per-cluster vectors.
        int fHead;
        int fTail;
        int fSize;
        int fNext;
        uint8_t odd;
        uint8_t onBoundary;
        uint8_t inCluster;
        uint8_t expanded;
        uint8_t isDefect;
    };
    std::vector<UfNode> ufNode;
    /** Edge e is "grown" this call iff ufEdgeStamp[e] == epoch. */
    std::vector<uint64_t> ufEdgeStamp;
    std::vector<int> ufActive;
    std::vector<int> ufNextActive;
    /** Grown edges incident to the virtual boundary vertex, so the
     *  peeling pass never scans the boundary's full adjacency row. */
    std::vector<int> ufBoundaryGrown;
    // Peeling pass scratch (visited iff node.stamp == epoch), one
    // line per vertex for the same reason as UfNode.
    struct PeelNode
    {
        uint64_t stamp;
        int parentEdge;
        uint8_t charge;
    };
    std::vector<PeelNode> peelNode;
    std::vector<int> peelOrder;
    std::vector<int> peelQueue;

    // ------------------------------------------------------ MWPM state
    // Per-detector multi-source Dijkstra state, valid iff
    // mwStamp[d] == epoch.
    std::vector<uint64_t> mwStamp;
    std::vector<double> mwDist;
    std::vector<uint8_t> mwObs;
    std::vector<uint8_t> mwSettled;
    /** Owning defect index (nearest defect) per touched detector. */
    std::vector<int> mwOwner;
    /** Binary heap storage for the Dijkstra priority queue. */
    std::vector<std::pair<double, int>> mwHeap;

    /** Candidate defect-defect path (i < j after normalization). */
    struct Cand
    {
        int i;
        int j;
        double w;
        uint8_t obs;
    };
    std::vector<Cand> mwCands;
    std::vector<MatchEdge> mwEdges;
    /** Per-defect boundary route (distance, observable parity). */
    std::vector<double> mwBDist;
    std::vector<uint8_t> mwBObs;
    /** Matching output, reused across calls. */
    std::vector<int> mwPartner;
    /** Connected-component split of the matching instance. */
    std::vector<int> mwCompParent;
    std::vector<std::pair<int, int>> mwCompKeys;  ///< (root, defect).
    /** Candidates bucketed by component: (root, candidate index). */
    std::vector<std::pair<int, int>> mwCandByComp;
    std::vector<int> mwLocalIndex;
    /** Persistent blossom-solver scratch: MWPM matching reuses it
     *  across calls, so steady-state decode allocates nothing. */
    MatcherScratch matcher;

    /** Size the union-find arrays for a graph with `num_vertices`
     *  vertices (detectors + boundary) and `num_edges` edges. */
    void
    ensureUf(size_t num_vertices, size_t num_edges)
    {
        if (ufNode.size() >= num_vertices &&
            ufEdgeStamp.size() >= num_edges)
            return;
        ufNode.resize(num_vertices, UfNode{});
        ufEdgeStamp.resize(num_edges, 0);
        ufActive.reserve(num_vertices);
        ufNextActive.reserve(num_vertices);
        ufBoundaryGrown.reserve(num_edges);
        peelNode.resize(num_vertices, PeelNode{});
        peelOrder.reserve(num_vertices);
        peelQueue.reserve(num_vertices);
    }

    /** Size the MWPM arrays for `num_detectors` detectors. */
    void
    ensureMwpm(size_t num_detectors)
    {
        if (mwStamp.size() >= num_detectors)
            return;
        mwStamp.resize(num_detectors, 0);
        mwDist.resize(num_detectors);
        mwObs.resize(num_detectors);
        mwSettled.resize(num_detectors);
        mwOwner.resize(num_detectors);
        mwHeap.reserve(num_detectors);
    }

    /** Total bytes owned by the workspace (tests pin that this stops
     *  growing once decode reaches steady state). */
    size_t
    footprintBytes() const
    {
        auto bytes = [](const auto &v) {
            return v.capacity() *
                   sizeof(typename std::remove_reference_t<
                          decltype(v)>::value_type);
        };
        return bytes(ufNode) + bytes(ufEdgeStamp) + bytes(ufActive) +
               bytes(ufNextActive) + bytes(ufBoundaryGrown) +
               bytes(peelNode) + bytes(peelOrder) +
               bytes(peelQueue) + bytes(mwStamp) + bytes(mwDist) +
               bytes(mwObs) + bytes(mwSettled) + bytes(mwOwner) +
               bytes(mwHeap) + bytes(mwCands) +
               bytes(mwEdges) + bytes(mwBDist) + bytes(mwBObs) +
               bytes(mwPartner) + bytes(mwCompParent) +
               bytes(mwCompKeys) + bytes(mwCandByComp) +
               bytes(mwLocalIndex) + matcher.footprintBytes();
    }
};

} // namespace qec

#endif // QEC_DECODER_DECODE_WORKSPACE_H
