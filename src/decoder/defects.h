/**
 * @file
 * Converts a shot's measurement record into decoder inputs: the list
 * of fired detectors (defects) and the true logical-observable flip.
 * Shared by the experiment runner and the DEM tests so both sides use
 * the same detector convention.
 */

#ifndef QEC_DECODER_DEFECTS_H
#define QEC_DECODER_DEFECTS_H

#include <vector>

#include "code/rotated_surface_code.h"
#include "code/types.h"
#include "sim/batch_frame_simulator.h"
#include "sim/frame_simulator.h"

namespace qec
{

/** Decoder-facing summary of one memory-experiment shot. */
struct ShotOutcome
{
    /** Fired detector ids in the protected basis (see DetectorModel
     *  for the id convention). */
    std::vector<int> defects;
    /** Whether the logical observable actually flipped (from the final
     *  transversal data measurement). */
    bool observableFlip = false;
};

/**
 * Extract defects from a full measurement record.
 *
 * @param code    Code lattice.
 * @param basis   Memory basis (decides which stabilizers are decoded).
 * @param rounds  Number of syndrome extraction rounds R.
 * @param record  All measurement records of the shot, including the
 *                final transversal data measurement.
 */
ShotOutcome extractDefects(const RotatedSurfaceCode &code, Basis basis,
                           int rounds,
                           const std::vector<MeasureRecord> &record);

/**
 * Extract every lane's defects from a batched measurement record in
 * one pass: flips are accumulated as words (64 lanes per XOR) and only
 * the final defect lists are materialized per lane.
 *
 * @param num_lanes Live lanes in the record's word-group; one
 *                  ShotOutcome is returned per lane, in lane order.
 */
std::vector<ShotOutcome>
extractDefectsBatched(const RotatedSurfaceCode &code, Basis basis,
                      int rounds,
                      const std::vector<BatchMeasureRecord> &record,
                      int num_lanes);

} // namespace qec

#endif // QEC_DECODER_DEFECTS_H
