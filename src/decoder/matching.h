/**
 * @file
 * Exact maximum-weight matching on general graphs (Galil's O(n^3)
 * blossom algorithm, following Van Rantwijk's well-known formulation).
 *
 * The MWPM decoder reduces minimum-weight perfect matching of defects
 * to maximum-weight matching with transformed weights. Weights are
 * integers; callers scale doubles before building the instance. The
 * implementation is validated against brute force in the test suite.
 */

#ifndef QEC_DECODER_MATCHING_H
#define QEC_DECODER_MATCHING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec
{

/** One undirected weighted edge of a matching instance. */
struct MatchEdge
{
    int u = 0;
    int v = 0;
    int64_t weight = 0;
};

/**
 * Persistent blossom-solver scratch: every vector the matcher needs,
 * reusable across solves so steady-state matching performs no heap
 * allocation (sized lazily to the largest instance seen). One
 * instance per thread; DecodeWorkspace embeds one so the MWPM decode
 * hot path no longer rebuilds the solver per call.
 */
struct MatcherScratch
{
    std::vector<std::vector<int>> neighbend;
    std::vector<std::vector<int>> blossomchilds;
    std::vector<std::vector<int>> blossomendps;
    std::vector<std::vector<int>> blossombestedges;
    std::vector<int> mate;
    std::vector<int> label;
    std::vector<int> labelend;
    std::vector<int> inblossom;
    std::vector<int> blossomparent;
    std::vector<int> blossombase;
    std::vector<int> bestedge;
    std::vector<int> unusedblossoms;
    std::vector<int64_t> dualvar;
    std::vector<uint8_t> allowedge;
    std::vector<int> queue;
    std::vector<int> leafStack;
    std::vector<int> pathBuf;
    std::vector<int> endpsBuf;
    std::vector<int> bestEdgeToBuf;
    /** Per-recursion-depth child-list buffers for expandBlossom (it
     *  mutates the child list while iterating, so each level needs a
     *  stable copy; pooling the copies keeps them allocation-free). */
    std::vector<std::vector<int>> expandPool;

    /** Total bytes owned (tests pin that this stops growing once
     *  decoding reaches steady state). */
    size_t footprintBytes() const;
};

/**
 * Compute a maximum-weight matching.
 *
 * @param num_vertices   Vertex count; vertices are 0..num_vertices-1.
 * @param edges          Undirected edges (no self loops).
 * @param max_cardinality When true, only maximum-cardinality matchings
 *                        are considered (needed for perfect matching).
 * @return partner[v] = matched vertex, or -1 if v is unmatched.
 */
std::vector<int> maxWeightMatching(int num_vertices,
                                   const std::vector<MatchEdge> &edges,
                                   bool max_cardinality);

/**
 * Minimum-weight perfect matching helper: negates weights around the
 * maximum edge weight and runs max-cardinality matching. All vertices
 * must be matchable (the decoder guarantees this with virtual boundary
 * vertices).
 */
std::vector<int> minWeightPerfectMatching(
    int num_vertices, const std::vector<MatchEdge> &edges);

/**
 * Workspace-friendly variant for hot decode loops: transforms `edges`
 * weights in place (callers rebuild the edge list per shot anyway)
 * and writes the result into `partner`, reusing its storage. Builds a
 * throwaway MatcherScratch, so it still allocates; hot loops should
 * pass a persistent scratch via the overload below.
 */
void minWeightPerfectMatchingInPlace(int num_vertices,
                                     std::vector<MatchEdge> &edges,
                                     std::vector<int> &partner);

/**
 * Zero-allocation variant: solves in the caller's persistent scratch.
 * After warmup on same-shaped instances the solve performs no heap
 * allocation at all (the last piece of the zero-alloc decode story).
 */
void minWeightPerfectMatchingInPlace(int num_vertices,
                                     std::vector<MatchEdge> &edges,
                                     std::vector<int> &partner,
                                     MatcherScratch &scratch);

} // namespace qec

#endif // QEC_DECODER_MATCHING_H
