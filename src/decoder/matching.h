/**
 * @file
 * Exact maximum-weight matching on general graphs (Galil's O(n^3)
 * blossom algorithm, following Van Rantwijk's well-known formulation).
 *
 * The MWPM decoder reduces minimum-weight perfect matching of defects
 * to maximum-weight matching with transformed weights. Weights are
 * integers; callers scale doubles before building the instance. The
 * implementation is validated against brute force in the test suite.
 */

#ifndef QEC_DECODER_MATCHING_H
#define QEC_DECODER_MATCHING_H

#include <cstdint>
#include <vector>

namespace qec
{

/** One undirected weighted edge of a matching instance. */
struct MatchEdge
{
    int u = 0;
    int v = 0;
    int64_t weight = 0;
};

/**
 * Compute a maximum-weight matching.
 *
 * @param num_vertices   Vertex count; vertices are 0..num_vertices-1.
 * @param edges          Undirected edges (no self loops).
 * @param max_cardinality When true, only maximum-cardinality matchings
 *                        are considered (needed for perfect matching).
 * @return partner[v] = matched vertex, or -1 if v is unmatched.
 */
std::vector<int> maxWeightMatching(int num_vertices,
                                   const std::vector<MatchEdge> &edges,
                                   bool max_cardinality);

/**
 * Minimum-weight perfect matching helper: negates weights around the
 * maximum edge weight and runs max-cardinality matching. All vertices
 * must be matchable (the decoder guarantees this with virtual boundary
 * vertices).
 */
std::vector<int> minWeightPerfectMatching(
    int num_vertices, const std::vector<MatchEdge> &edges);

/**
 * Workspace-friendly variant for hot decode loops: transforms `edges`
 * weights in place (callers rebuild the edge list per shot anyway) and
 * moves the result into `partner`, reusing its storage. The blossom
 * solver itself still allocates internally; this trims the reduction's
 * copies around it.
 */
void minWeightPerfectMatchingInPlace(int num_vertices,
                                     std::vector<MatchEdge> &edges,
                                     std::vector<int> &partner);

} // namespace qec

#endif // QEC_DECODER_MATCHING_H
