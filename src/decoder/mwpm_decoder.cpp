#include "decoder/mwpm_decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "base/logging.h"
#include "decoder/matching.h"

namespace qec
{

namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();
/** Weight clamp so scaled integer weights never overflow. */
constexpr double kMaxWeight = 1.0e6;
/** Fixed-point scale for blossom weights. */
constexpr double kWeightScale = 1024.0;

double
edgeWeight(double q)
{
    q = std::min(std::max(q, 1.0e-12), 0.499999);
    return std::log((1.0 - q) / q);
}

int64_t
scaled(double w)
{
    w = std::min(w, kMaxWeight);
    return (int64_t)std::llround(w * kWeightScale);
}

} // namespace

MwpmDecoder::MwpmDecoder(const DetectorModel &dem, double p,
                         DecoderOptions options)
    : numDets_(dem.numDetectors()), options_(options),
      boundaryW_(dem.numDetectors(), kInf),
      boundaryObs_(dem.numDetectors(), 0)
{
    // Pass 1: boundary edges + per-detector degrees.
    std::vector<int> degree(numDets_, 0);
    for (const auto &edge : dem.edges) {
        const double q = edge.probability(p);
        if (q <= 0.0)
            continue;
        if (edge.b == kBoundary) {
            const float w = (float)edgeWeight(q);
            if (w < boundaryW_[edge.a]) {
                boundaryW_[edge.a] = w;
                boundaryObs_[edge.a] = edge.obsFlip ? 1 : 0;
            }
            continue;
        }
        ++degree[edge.a];
        ++degree[edge.b];
        ++numEdges_;
    }

    // Pass 2: flat CSR adjacency (counting sort keeps edge order).
    minEdgeW_ = (double)kInf;
    nbrOffsets_.assign((size_t)numDets_ + 1, 0);
    for (int d = 0; d < numDets_; ++d)
        nbrOffsets_[(size_t)d + 1] = nbrOffsets_[d] + degree[d];
    nbrs_.resize(2 * numEdges_);
    std::vector<int> cursor(nbrOffsets_.begin(), nbrOffsets_.end() - 1);
    for (const auto &edge : dem.edges) {
        const double q = edge.probability(p);
        if (q <= 0.0 || edge.b == kBoundary)
            continue;
        const float w = (float)edgeWeight(q);
        const uint8_t obs = edge.obsFlip ? 1 : 0;
        nbrs_[(size_t)cursor[edge.a]++] = {edge.b, w, obs};
        nbrs_[(size_t)cursor[edge.b]++] = {edge.a, w, obs};
        minEdgeW_ = std::min(minEdgeW_, (double)w);
    }

    // Persistent defect-to-boundary distance cache: one multi-source
    // Dijkstra seeded from every detector's direct boundary edge gives
    // the exact shortest boundary route (and its observable parity)
    // for every detector id. Per-shot decodes then never search for a
    // boundary route again.
    boundaryDist_.assign(numDets_, (double)kInf);
    boundaryPathObs_.assign(numDets_, 0);
    using QItem = std::pair<double, int>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    for (int d = 0; d < numDets_; ++d) {
        if (boundaryW_[d] < kInf) {
            boundaryDist_[d] = boundaryW_[d];
            boundaryPathObs_[d] = boundaryObs_[d];
            pq.push({boundaryDist_[d], d});
        }
    }
    while (!pq.empty()) {
        auto [dist, u] = pq.top();
        pq.pop();
        if (dist > boundaryDist_[u])
            continue;
        const int row_end = nbrOffsets_[(size_t)u + 1];
        for (int k = nbrOffsets_[u]; k < row_end; ++k) {
            const Nbr &nbr = nbrs_[k];
            const double nd = dist + nbr.w;
            if (nd < boundaryDist_[nbr.to]) {
                boundaryDist_[nbr.to] = nd;
                boundaryPathObs_[nbr.to] =
                    boundaryPathObs_[u] ^ nbr.obs;
                pq.push({nd, nbr.to});
            }
        }
    }
}

int
MwpmDecoder::componentSlackHops(const int *defects, size_t count) const
{
    if (count == 0)
        return 0;
    if (!(minEdgeW_ > 0.0) || minEdgeW_ >= kMaxWeight)
        return 0;   // no detector-detector edges: regions never grow
    double bmax = 0.0;
    for (size_t i = 0; i < count; ++i)
        bmax = std::max(bmax,
                        std::min(boundaryDist_[defects[i]], kMaxWeight));
    return (int)std::ceil(bmax / minEdgeW_);
}

bool
MwpmDecoder::decodeSparse(const int *defects, size_t count,
                          DecodeWorkspace &ws) const
{
    const int n = (int)count;
    ws.lastReachHops = 0;
    if (n == 0)
        return false;

    ws.ensureMwpm((size_t)numDets_);
    const uint64_t call = ++ws.epoch;

    if ((int)ws.mwBDist.size() < n) {
        ws.mwBDist.resize(n);
        ws.mwBObs.resize(n);
        ws.mwLocalIndex.resize(n);
        ws.mwCompParent.resize(n);
    }
    ws.mwCands.clear();

    // Largest boundary distance among this shot's defects: a defect
    // pair whose connecting path is longer than both boundary routes
    // combined is never matched (pairing each with the boundary is at
    // most as expensive), so no Dijkstra needs to search beyond its
    // own boundary distance plus this maximum.
    double bmax_shot = 0.0;
    for (int i = 0; i < n; ++i) {
        bmax_shot = std::max(
            bmax_shot, std::min(boundaryDist_[defects[i]],
                                kMaxWeight));
    }

    // Reach certificate: every settle obeys nd <= bdist_i + bmax_shot.
    // The certificate stores ceil(bmax_shot / minEdgeW_) + 1 (the +1
    // covers the meeting edge a candidate probe crosses past a settled
    // frontier); the bdist_i term — bounded by the enclosing shot's
    // bmax — is supplied separately by componentSlackHops, so the
    // composition guard's cert + slack sum bounds the true radius
    // both when the component is decoded alone and when it would be
    // decoded inside the full shot.
    ws.lastReachHops =
        (minEdgeW_ > 0.0 && minEdgeW_ < kMaxWeight)
            ? (int)std::ceil(bmax_shot / minEdgeW_) + 1
            : 0;

    for (int i = 0; i < n; ++i) {
        ws.mwBDist[i] =
            std::min(boundaryDist_[defects[i]], kMaxWeight);
        ws.mwBObs[i] = boundaryPathObs_[defects[i]];
    }

    // Stage 1: one multi-source Dijkstra grows a shortest-path region
    // around every defect simultaneously; where two regions meet, the
    // meeting edge yields a candidate pair. When the shortest i-j
    // path stays inside the two regions (the overwhelmingly common
    // case) the candidate weight is the exact shortest distance; a
    // pair whose shortest path crosses a third defect's region is
    // instead represented through that defect's candidates (the
    // local-matching approximation production decoders use). Every
    // touched node settles at most once per shot (instead of once per
    // nearby defect), and only adjacent-region pairs become
    // candidates, which keeps the matching components small. Growth
    // past a region's boundary distance plus the shot's largest
    // boundary distance is pruned: any pair found there is
    // boundary-dominated.
    ws.mwHeap.clear();
    for (int i = 0; i < n; ++i) {
        const int src = defects[i];
        ws.mwStamp[src] = call;
        ws.mwDist[src] = 0.0;
        ws.mwObs[src] = 0;
        ws.mwSettled[src] = 0;
        ws.mwOwner[src] = i;
        ws.mwHeap.push_back({0.0, src});
    }
    std::make_heap(ws.mwHeap.begin(), ws.mwHeap.end(), std::greater<>{});

    int settled_count = 0;
    while (!ws.mwHeap.empty()) {
        const auto [d, u] = ws.mwHeap.front();
        std::pop_heap(ws.mwHeap.begin(), ws.mwHeap.end(),
                      std::greater<>{});
        ws.mwHeap.pop_back();
        if (ws.mwSettled[u] || d > ws.mwDist[u])
            continue;
        ws.mwSettled[u] = 1;
        ++settled_count;
        ++ws.statSettledNodes;
        const int oi = ws.mwOwner[u];
        const double bdist_i = ws.mwBDist[oi];

        const int row_end = nbrOffsets_[(size_t)u + 1];
        for (int k = nbrOffsets_[u]; k < row_end; ++k) {
            const Nbr &nbr = nbrs_[k];
            if (ws.mwStamp[nbr.to] == call &&
                ws.mwSettled[nbr.to]) {
                const int oj = ws.mwOwner[nbr.to];
                if (oj == oi)
                    continue;
                // Region crossing: candidate at the exact shortest
                // distance between the two owners (for this meeting
                // edge; the dedup pass keeps the global minimum).
                // Dropped when matching both owners to the boundary
                // is strictly cheaper.
                const double w = d + nbr.w + ws.mwDist[nbr.to];
                if (w > bdist_i + ws.mwBDist[oj])
                    continue;
                const uint8_t obs = ws.mwObs[u] ^ nbr.obs ^
                                    ws.mwObs[nbr.to];
                if (oi < oj)
                    ws.mwCands.push_back({oi, oj, w, obs});
                else
                    ws.mwCands.push_back({oj, oi, w, obs});
                continue;
            }
            const double nd = d + nbr.w;
            if (nd > bdist_i + bmax_shot)
                continue;   // boundary-dominated beyond this radius
            if (ws.mwStamp[nbr.to] != call) {
                ws.mwStamp[nbr.to] = call;
                ws.mwSettled[nbr.to] = 0;
                ws.mwDist[nbr.to] = nd;
                ws.mwObs[nbr.to] = ws.mwObs[u] ^ nbr.obs;
                ws.mwOwner[nbr.to] = oi;
                ws.mwHeap.push_back({nd, nbr.to});
                std::push_heap(ws.mwHeap.begin(), ws.mwHeap.end(),
                               std::greater<>{});
            } else if (nd < ws.mwDist[nbr.to] &&
                       !ws.mwSettled[nbr.to]) {
                ws.mwDist[nbr.to] = nd;
                ws.mwObs[nbr.to] = ws.mwObs[u] ^ nbr.obs;
                ws.mwOwner[nbr.to] = oi;
                ws.mwHeap.push_back({nd, nbr.to});
                std::push_heap(ws.mwHeap.begin(), ws.mwHeap.end(),
                               std::greater<>{});
            }
        }
        if (settled_count >= options_.settleCap)
            break;
    }

    // Deduplicate candidates: sort by (i, j, w, obs) and keep the
    // minimum-weight path per pair. The surviving sorted list doubles
    // as the pair -> observable-parity lookup after matching.
    std::sort(ws.mwCands.begin(), ws.mwCands.end(),
              [](const DecodeWorkspace::Cand &x,
                 const DecodeWorkspace::Cand &y) {
                  if (x.i != y.i)
                      return x.i < y.i;
                  if (x.j != y.j)
                      return x.j < y.j;
                  if (x.w != y.w)
                      return x.w < y.w;
                  return x.obs < y.obs;
              });
    size_t unique_count = 0;
    for (size_t k = 0; k < ws.mwCands.size(); ++k) {
        if (k > 0 && ws.mwCands[k].i == ws.mwCands[k - 1].i &&
            ws.mwCands[k].j == ws.mwCands[k - 1].j)
            continue;
        ws.mwCands[unique_count++] = ws.mwCands[k];
    }
    ws.mwCands.resize(unique_count);

    // Enforce the per-defect candidate budget: when a defect exceeds
    // neighborLimit adjacencies (rare — region adjacency yields only a
    // handful), keep its lightest ones. Dropping edges never breaks
    // feasibility (every defect retains its boundary edge).
    ws.mwLocalIndex.assign(n, 0);   // reused as degree counts here
    bool over_budget = false;
    for (const auto &cand : ws.mwCands) {
        if (++ws.mwLocalIndex[cand.i] > options_.neighborLimit ||
            ++ws.mwLocalIndex[cand.j] > options_.neighborLimit)
            over_budget = true;
    }
    if (over_budget) {
        std::sort(ws.mwCands.begin(), ws.mwCands.end(),
                  [](const DecodeWorkspace::Cand &x,
                     const DecodeWorkspace::Cand &y) {
                      if (x.w != y.w)
                          return x.w < y.w;
                      if (x.i != y.i)
                          return x.i < y.i;
                      return x.j < y.j;
                  });
        ws.mwLocalIndex.assign(n, 0);
        size_t kept = 0;
        for (size_t k = 0; k < ws.mwCands.size(); ++k) {
            const auto &cand = ws.mwCands[k];
            if (ws.mwLocalIndex[cand.i] >= options_.neighborLimit ||
                ws.mwLocalIndex[cand.j] >= options_.neighborLimit)
                continue;
            ++ws.mwLocalIndex[cand.i];
            ++ws.mwLocalIndex[cand.j];
            ws.mwCands[kept++] = cand;
        }
        ws.mwCands.resize(kept);
        // Restore (i, j) order for the post-matching parity lookup.
        std::sort(ws.mwCands.begin(), ws.mwCands.end(),
                  [](const DecodeWorkspace::Cand &x,
                     const DecodeWorkspace::Cand &y) {
                      if (x.i != y.i)
                          return x.i < y.i;
                      return x.j < y.j;
                  });
    }

    // Split the doubled matching instance into connected components
    // of the candidate graph: every cross-component pairing is
    // boundary-dominated, so blossom runs on many small instances
    // instead of one O(n^3) one (the sparse-blossom trick).
    for (int i = 0; i < n; ++i)
        ws.mwCompParent[i] = i;
    auto findComp = [&](int v) {
        while (ws.mwCompParent[v] != v) {
            ws.mwCompParent[v] =
                ws.mwCompParent[ws.mwCompParent[v]];
            v = ws.mwCompParent[v];
        }
        return v;
    };
    for (const auto &cand : ws.mwCands) {
        const int a = findComp(cand.i);
        const int b = findComp(cand.j);
        if (a != b)
            ws.mwCompParent[b] = a;
    }
    ws.mwCompKeys.clear();
    for (int i = 0; i < n; ++i)
        ws.mwCompKeys.push_back({findComp(i), i});
    std::sort(ws.mwCompKeys.begin(), ws.mwCompKeys.end());
    // Bucket candidates by component root once (index order preserved
    // within a root), so each candidate is visited exactly once below.
    ws.mwCandByComp.clear();
    for (size_t k = 0; k < ws.mwCands.size(); ++k)
        ws.mwCandByComp.push_back(
            {findComp(ws.mwCands[k].i), (int)k});
    std::sort(ws.mwCandByComp.begin(), ws.mwCandByComp.end());

    bool obs = false;
    size_t group = 0;
    size_t cand_cursor = 0;
    while (group < ws.mwCompKeys.size()) {
        const int root = ws.mwCompKeys[group].first;
        size_t group_end = group;
        while (group_end < ws.mwCompKeys.size() &&
               ws.mwCompKeys[group_end].first == root)
            ++group_end;
        const int k = (int)(group_end - group);

        // Trivial component: one defect, matched to its boundary twin.
        if (k == 1) {
            const int gi = ws.mwCompKeys[group].second;
            obs ^= (ws.mwBObs[gi] != 0);
            if (ws.recordCorrections)
                ws.corrections.push_back(
                    {defects[gi], -1, ws.mwBObs[gi]});
            group = group_end;
            continue;
        }

        for (size_t t = group; t < group_end; ++t)
            ws.mwLocalIndex[ws.mwCompKeys[t].second] =
                (int)(t - group);

        // Local doubled instance: real-real candidate edges plus
        // mirrored virtual-virtual edges that free both boundary
        // twins at zero cost, and one real-virtual edge per defect.
        ws.mwEdges.clear();
        while (cand_cursor < ws.mwCandByComp.size() &&
               ws.mwCandByComp[cand_cursor].first < root)
            ++cand_cursor;   // candidates of skipped 1-defect groups
        for (; cand_cursor < ws.mwCandByComp.size() &&
               ws.mwCandByComp[cand_cursor].first == root;
             ++cand_cursor) {
            const auto &cand =
                ws.mwCands[ws.mwCandByComp[cand_cursor].second];
            const int li = ws.mwLocalIndex[cand.i];
            const int lj = ws.mwLocalIndex[cand.j];
            ws.mwEdges.push_back({li, lj, scaled(cand.w)});
            ws.mwEdges.push_back({k + li, k + lj, 0});
        }
        for (size_t t = group; t < group_end; ++t) {
            const int li = (int)(t - group);
            ws.mwEdges.push_back(
                {li, k + li,
                 scaled(ws.mwBDist[ws.mwCompKeys[t].second])});
        }

        ws.statMatchedVerts += 2 * (uint64_t)k;
        ++ws.statComponents;
        minWeightPerfectMatchingInPlace(2 * k, ws.mwEdges,
                                        ws.mwPartner, ws.matcher);

        // Predicted observable: parity over matched structure.
        for (int li = 0; li < k; ++li) {
            const int m = ws.mwPartner[li];
            const int gi = ws.mwCompKeys[group + li].second;
            if (m == k + li) {
                obs ^= (ws.mwBObs[gi] != 0);
                if (ws.recordCorrections)
                    ws.corrections.push_back(
                        {defects[gi], -1, ws.mwBObs[gi]});
            } else if (m > li && m < k) {
                const int gj = ws.mwCompKeys[group + m].second;
                // Binary search the deduped candidate list.
                auto it = std::lower_bound(
                    ws.mwCands.begin(), ws.mwCands.end(),
                    std::make_pair(gi, gj),
                    [](const DecodeWorkspace::Cand &c,
                       const std::pair<int, int> &key) {
                        if (c.i != key.first)
                            return c.i < key.first;
                        return c.j < key.second;
                    });
                uint8_t pair_obs = 0;
                if (it != ws.mwCands.end() && it->i == gi &&
                    it->j == gj)
                    pair_obs = it->obs;
                obs ^= (pair_obs != 0);
                if (ws.recordCorrections)
                    ws.corrections.push_back(
                        {defects[gi], defects[gj], pair_obs});
            }
        }
        group = group_end;
    }
    return obs;
}

} // namespace qec
