#include "decoder/mwpm_decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "base/logging.h"
#include "decoder/matching.h"

namespace qec
{

namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();
/** Weight clamp so scaled integer weights never overflow. */
constexpr double kMaxWeight = 1.0e6;
/** Fixed-point scale for blossom weights. */
constexpr double kWeightScale = 1024.0;

double
edgeWeight(double q)
{
    q = std::min(std::max(q, 1.0e-12), 0.499999);
    return std::log((1.0 - q) / q);
}

int64_t
scaled(double w)
{
    w = std::min(w, kMaxWeight);
    return (int64_t)std::llround(w * kWeightScale);
}

} // namespace

MwpmDecoder::MwpmDecoder(const DetectorModel &dem, double p,
                         DecoderOptions options)
    : numDets_(dem.numDetectors()), options_(options),
      adj_(dem.numDetectors()),
      boundaryW_(dem.numDetectors(), kInf),
      boundaryObs_(dem.numDetectors(), 0)
{
    for (const auto &edge : dem.edges) {
        const double q = edge.probability(p);
        if (q <= 0.0)
            continue;
        const float w = (float)edgeWeight(q);
        if (edge.b == kBoundary) {
            if (w < boundaryW_[edge.a]) {
                boundaryW_[edge.a] = w;
                boundaryObs_[edge.a] = edge.obsFlip ? 1 : 0;
            }
            continue;
        }
        adj_[edge.a].push_back({edge.b, w, edge.obsFlip});
        adj_[edge.b].push_back({edge.a, w, edge.obsFlip});
        ++numEdges_;
    }
}

bool
MwpmDecoder::decode(const std::vector<int> &defects) const
{
    const int n = (int)defects.size();
    if (n == 0)
        return false;

    // Map detector id -> defect index.
    std::vector<int> defect_of(numDets_, -1);
    for (int i = 0; i < n; ++i)
        defect_of[defects[i]] = i;

    struct Candidate
    {
        double w;
        uint8_t obs;
        bool valid = false;
    };
    // Candidate defect-defect paths (upper triangle, i < j).
    std::vector<std::vector<std::pair<int, Candidate>>> cand(n);
    std::vector<double> bdist(n);
    std::vector<uint8_t> bobs(n, 0);

    std::vector<double> dist(numDets_);
    std::vector<uint8_t> obspar(numDets_);
    std::vector<int> stamp(numDets_, -1);
    std::vector<uint8_t> settled(numDets_, 0);

    using QItem = std::pair<double, int>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;

    for (int i = 0; i < n; ++i) {
        const int src = defects[i];
        // Epoch i marks freshly touched nodes for this source.
        while (!pq.empty())
            pq.pop();
        std::vector<int> touched;

        dist[src] = 0.0;
        obspar[src] = 0;
        stamp[src] = i;
        settled[src] = 0;
        touched.push_back(src);
        pq.push({0.0, src});

        double best_boundary = kInf;
        uint8_t best_boundary_obs = 0;
        int found = 0;
        int settled_count = 0;

        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (stamp[u] != i || settled[u] || d > dist[u])
                continue;
            settled[u] = 1;
            ++settled_count;

            if (d + 0.0 >= best_boundary && found >= options_.neighborLimit)
                break;

            if (boundaryW_[u] < kInf &&
                d + boundaryW_[u] < best_boundary) {
                best_boundary = d + boundaryW_[u];
                best_boundary_obs = obspar[u] ^ boundaryObs_[u];
            }
            const int j = defect_of[u];
            if (j >= 0 && j != i) {
                ++found;
                if (i < j) {
                    cand[i].push_back(
                        {j, {d, obspar[u], true}});
                } else {
                    cand[j].push_back(
                        {i, {d, obspar[u], true}});
                }
                if (found >= options_.neighborLimit &&
                    best_boundary < kInf)
                    break;
            }
            if (settled_count >= options_.settleCap)
                break;

            for (const auto &nbr : adj_[u]) {
                const double nd = d + nbr.w;
                if (nd >= best_boundary + best_boundary &&
                    found >= options_.neighborLimit)
                    continue;
                if (stamp[nbr.to] != i) {
                    stamp[nbr.to] = i;
                    settled[nbr.to] = 0;
                    dist[nbr.to] = nd;
                    obspar[nbr.to] = obspar[u] ^ nbr.obs;
                    touched.push_back(nbr.to);
                    pq.push({nd, nbr.to});
                } else if (nd < dist[nbr.to] && !settled[nbr.to]) {
                    dist[nbr.to] = nd;
                    obspar[nbr.to] = obspar[u] ^ nbr.obs;
                    pq.push({nd, nbr.to});
                }
            }
        }
        bdist[i] = std::min(best_boundary, kMaxWeight);
        bobs[i] = best_boundary_obs;
        (void)touched;
    }

    // Deduplicate candidates (keep minimum weight per pair).
    std::vector<MatchEdge> edges;
    std::vector<std::pair<std::pair<int, int>, uint8_t>> pair_obs;
    for (int i = 0; i < n; ++i) {
        std::sort(cand[i].begin(), cand[i].end(),
                  [](const auto &x, const auto &y) {
                      return x.first < y.first ||
                             (x.first == y.first &&
                              x.second.w < y.second.w);
                  });
        int last = -1;
        for (const auto &[j, c] : cand[i]) {
            if (j == last)
                continue;
            last = j;
            // Real-real edge plus the mirrored virtual-virtual edge
            // that frees both boundary twins at zero cost.
            edges.push_back({i, j, scaled(c.w)});
            edges.push_back({n + i, n + j, 0});
            pair_obs.push_back({{i, j}, c.obs});
        }
        edges.push_back({i, n + i, scaled(bdist[i])});
    }

    auto partner = minWeightPerfectMatching(2 * n, edges);

    // Predicted observable: parity over matched structure.
    bool obs = false;
    for (int i = 0; i < n; ++i) {
        const int m = partner[i];
        if (m == n + i) {
            obs ^= (bobs[i] != 0);
        } else if (m > i && m < n) {
            // Find the candidate obs parity for the matched pair.
            for (const auto &[key, po] : pair_obs) {
                if (key.first == i && key.second == m) {
                    obs ^= (po != 0);
                    break;
                }
            }
        }
    }
    return obs;
}

} // namespace qec
