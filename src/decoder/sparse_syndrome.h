/**
 * @file
 * Sparse syndrome extraction from batched measurement records.
 *
 * The batch engine leaves each measurement as one W-lane plane word
 * (W = 64/256/512; see base/simd_word.h); this layer folds those words
 * into detector bit-planes and word-scans them with ctz to emit
 * per-lane fired-detector lists, stored lane-major in one flat arena
 * (no per-lane vectors). At the error rates ERASER targets most
 * detector words are zero, so extraction cost tracks the number of
 * fired detectors, not the lattice volume — the same sparse-shot
 * representation Stim and PyMatching stream between sampler and
 * decoder.
 *
 * Each lane also gets an order-sensitive FNV-style hash of its defect
 * list, which the syndrome dedup cache keys on, plus a nonzero-lane
 * mask that lets the decode stage skip zero-defect shots entirely.
 *
 * BatchSyndrome itself is width-agnostic: lane sets are stored as up
 * to kMaxBatchWords raw 64-bit words, so one decode pipeline consumes
 * groups of any width.
 */

#ifndef QEC_DECODER_SPARSE_SYNDROME_H
#define QEC_DECODER_SPARSE_SYNDROME_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/simd_word.h"
#include "code/circuit_ir.h"
#include "code/rotated_surface_code.h"
#include "code/types.h"
#include "sim/batch_frame_simulator.h"

namespace qec
{

/** All lanes' sparse syndromes for one word-group, flat lane-major. */
struct BatchSyndrome
{
    int numLanes = 0;
    /** Plane words covering numLanes (ceil(numLanes / 64)). */
    int numWords = 0;
    /** Per-lane true logical-observable flip bits, 64 lanes/word. */
    std::array<uint64_t, kMaxBatchWords> observableWords{};
    /** Lanes with at least one fired detector, 64 lanes/word. */
    std::array<uint64_t, kMaxBatchWords> nonzeroWords{};
    /** Lane l's defects live at defects[offsets[l] .. offsets[l+1]),
     *  in the same (stabilizer-major, round-ascending) order the
     *  scalar extractDefects emits. */
    std::vector<uint32_t> offsets;
    std::vector<int> defects;
    /** Per-lane syndromeHash() of the defect list. */
    std::vector<uint64_t> laneHash;

    const int *
    laneBegin(int lane) const
    {
        return defects.data() + offsets[lane];
    }
    size_t
    laneSize(int lane) const
    {
        return offsets[(size_t)lane + 1] - offsets[lane];
    }
    bool
    laneObservable(int lane) const
    {
        return (observableWords[lane >> 6] >> (lane & 63)) & 1;
    }
    bool
    laneNonzero(int lane) const
    {
        return (nonzeroWords[lane >> 6] >> (lane & 63)) & 1;
    }
};

/** Order-sensitive hash of a defect list (dedup cache key). */
uint64_t syndromeHash(const int *defects, size_t count);

/**
 * Reusable extractor: owns the bit-plane scratch so repeated word-group
 * extractions allocate nothing in steady state. One instance per
 * thread; width-generic (one instance serves any record width).
 */
class SparseSyndromeExtractor
{
  public:
    /**
     * Extract every lane's sparse syndrome from a batched measurement
     * record (including the final transversal data measurement).
     * Reuses `out`'s buffers.
     */
    template <int NW>
    void extract(const RotatedSurfaceCode &code, Basis basis,
                 int rounds,
                 const std::vector<BatchMeasureRecordT<NW>> &record,
                 int num_lanes, BatchSyndrome &out);

    /**
     * As above, but routed through a compiled program's
     * measure→detector/observable map instead of walking the lattice:
     * record stabilizer ids select detector columns via
     * `map.stabColumn`, the final detector row is reconstructed from
     * the column-support CSR, and the observable is the XOR of
     * `map.observable`'s final readouts. For surface-memory programs
     * this emits bit-identical syndromes to the code-based overload.
     */
    template <int NW>
    void extract(const IrDetectorMap &map, int rounds,
                 const std::vector<BatchMeasureRecordT<NW>> &record,
                 int num_lanes, BatchSyndrome &out);

  private:
    /** All scratch planes are [cell][word] with runtime word stride. */
    std::vector<uint64_t> mflip_;     ///< [round*stab][word] planes.
    std::vector<uint64_t> dataFlip_;  ///< [data qubit][word] finals.
    std::vector<uint64_t> events_;    ///< [stab*(rounds+1)][word].
};

extern template void SparseSyndromeExtractor::extract<1>(
    const RotatedSurfaceCode &, Basis, int,
    const std::vector<BatchMeasureRecordT<1>> &, int, BatchSyndrome &);
extern template void SparseSyndromeExtractor::extract<4>(
    const RotatedSurfaceCode &, Basis, int,
    const std::vector<BatchMeasureRecordT<4>> &, int, BatchSyndrome &);
extern template void SparseSyndromeExtractor::extract<8>(
    const RotatedSurfaceCode &, Basis, int,
    const std::vector<BatchMeasureRecordT<8>> &, int, BatchSyndrome &);

extern template void SparseSyndromeExtractor::extract<1>(
    const IrDetectorMap &, int,
    const std::vector<BatchMeasureRecordT<1>> &, int, BatchSyndrome &);
extern template void SparseSyndromeExtractor::extract<4>(
    const IrDetectorMap &, int,
    const std::vector<BatchMeasureRecordT<4>> &, int, BatchSyndrome &);
extern template void SparseSyndromeExtractor::extract<8>(
    const IrDetectorMap &, int,
    const std::vector<BatchMeasureRecordT<8>> &, int, BatchSyndrome &);

} // namespace qec

#endif // QEC_DECODER_SPARSE_SYNDROME_H
