/**
 * @file
 * Sparse syndrome extraction from batched measurement records.
 *
 * The batch engine leaves each measurement as one 64-lane word; this
 * layer folds those words into detector bit-planes and word-scans them
 * with ctz to emit per-lane fired-detector lists, stored lane-major in
 * one flat arena (no per-lane vectors). At the error rates ERASER
 * targets most detector words are zero, so extraction cost tracks the
 * number of fired detectors, not the lattice volume — the same
 * sparse-shot representation Stim and PyMatching stream between
 * sampler and decoder.
 *
 * Each lane also gets an order-sensitive FNV-style hash of its defect
 * list, which the syndrome dedup cache keys on, plus a nonzero-lane
 * mask that lets the decode stage skip zero-defect shots entirely.
 */

#ifndef QEC_DECODER_SPARSE_SYNDROME_H
#define QEC_DECODER_SPARSE_SYNDROME_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "code/rotated_surface_code.h"
#include "code/types.h"
#include "sim/batch_frame_simulator.h"

namespace qec
{

/** All lanes' sparse syndromes for one word-group, flat lane-major. */
struct BatchSyndrome
{
    int numLanes = 0;
    /** Per-lane true logical-observable flip bits. */
    uint64_t observableWord = 0;
    /** Lanes with at least one fired detector. */
    uint64_t nonzeroMask = 0;
    /** Lane l's defects live at defects[offsets[l] .. offsets[l+1]),
     *  in the same (stabilizer-major, round-ascending) order the
     *  scalar extractDefects emits. */
    std::vector<uint32_t> offsets;
    std::vector<int> defects;
    /** Per-lane syndromeHash() of the defect list. */
    std::vector<uint64_t> laneHash;

    const int *
    laneBegin(int lane) const
    {
        return defects.data() + offsets[lane];
    }
    size_t
    laneSize(int lane) const
    {
        return offsets[(size_t)lane + 1] - offsets[lane];
    }
    bool
    laneObservable(int lane) const
    {
        return (observableWord >> lane) & 1;
    }
};

/** Order-sensitive hash of a defect list (dedup cache key). */
uint64_t syndromeHash(const int *defects, size_t count);

/**
 * Reusable extractor: owns the bit-plane scratch so repeated word-group
 * extractions allocate nothing in steady state. One instance per
 * thread.
 */
class SparseSyndromeExtractor
{
  public:
    /**
     * Extract every lane's sparse syndrome from a batched measurement
     * record (including the final transversal data measurement).
     * Reuses `out`'s buffers.
     */
    void extract(const RotatedSurfaceCode &code, Basis basis,
                 int rounds,
                 const std::vector<BatchMeasureRecord> &record,
                 int num_lanes, BatchSyndrome &out);

  private:
    std::vector<uint64_t> mflip_;     ///< [round][basis stab] words.
    std::vector<uint64_t> dataFlip_;  ///< Final data flips per qubit.
    std::vector<uint64_t> events_;    ///< [stab][round] event words.
};

} // namespace qec

#endif // QEC_DECODER_SPARSE_SYNDROME_H
