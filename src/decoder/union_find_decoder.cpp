#include "decoder/union_find_decoder.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

UnionFindDecoder::UnionFindDecoder(const DetectorModel &dem, double p)
    : numDets_(dem.numDetectors()), boundaryVertex_(dem.numDetectors())
{
    incident_.resize(numDets_ + 1);
    for (const auto &edge : dem.edges) {
        if (edge.probability(p) <= 0.0)
            continue;
        const int v =
            edge.b == kBoundary ? boundaryVertex_ : edge.b;
        const int index = (int)edges_.size();
        edges_.push_back({edge.a, v, edge.obsFlip ? (uint8_t)1
                                                  : (uint8_t)0});
        incident_[edge.a].push_back(index);
        incident_[v].push_back(index);
    }
}

bool
UnionFindDecoder::decode(const std::vector<int> &defects) const
{
    if (defects.empty())
        return false;

    const int n = numDets_ + 1;

    // Union-find over vertices.
    std::vector<int> parent(n);
    for (int v = 0; v < n; ++v)
        parent[v] = v;
    std::vector<int> find_stack;
    auto find = [&](int v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };

    std::vector<uint8_t> is_defect(n, 0);
    for (int det : defects)
        is_defect[det] = 1;

    // Per-root cluster state (indexed by representative).
    std::vector<int> odd(n, 0);            // defect parity
    std::vector<uint8_t> on_boundary(n, 0);
    std::vector<std::vector<int>> frontier(n);
    std::vector<uint8_t> in_cluster(n, 0);
    std::vector<uint8_t> expanded(n, 0);
    std::vector<uint8_t> grown(edges_.size(), 0);

    std::vector<int> active;   // roots with odd parity, off boundary
    for (int det : defects) {
        odd[det] = 1;
        in_cluster[det] = 1;
        frontier[det].push_back(det);
        active.push_back(det);
    }
    in_cluster[boundaryVertex_] = 1;
    on_boundary[boundaryVertex_] = 1;

    auto merge = [&](int a, int b) {
        // Union by frontier size; returns the surviving root.
        a = find(a);
        b = find(b);
        if (a == b)
            return a;
        if (frontier[a].size() < frontier[b].size())
            std::swap(a, b);
        parent[b] = a;
        odd[a] ^= odd[b];
        on_boundary[a] |= on_boundary[b];
        frontier[a].insert(frontier[a].end(), frontier[b].begin(),
                           frontier[b].end());
        frontier[b].clear();
        return a;
    };

    // Grow active clusters one edge layer at a time.
    while (!active.empty()) {
        std::vector<int> next_active;
        bool grew_any = false;
        for (int root : active) {
            int r = find(root);
            if (r != root || !odd[r] || on_boundary[r])
                continue;   // stale entry or neutralized meanwhile

            // Expand every not-yet-expanded vertex of the cluster.
            std::vector<int> to_expand;
            to_expand.swap(frontier[r]);
            for (int u : to_expand) {
                if (expanded[u])
                    continue;
                expanded[u] = 1;
                grew_any = true;
                for (int ei : incident_[u]) {
                    if (grown[ei])
                        continue;
                    grown[ei] = 1;
                    const auto &edge = edges_[ei];
                    const int w = edge.u == u ? edge.v : edge.u;
                    if (!in_cluster[w]) {
                        in_cluster[w] = 1;
                        const int rr = find(u);
                        frontier[rr].push_back(w);
                        parent[w] = rr;
                    } else {
                        merge(u, w);
                    }
                }
            }
            r = find(root);
            // Expanded vertices may still have ungrown edges after a
            // merge; they are done. Freshly absorbed vertices stay in
            // the frontier for the next layer.
            if (odd[r] && !on_boundary[r])
                next_active.push_back(r);
        }
        // Deduplicate roots.
        std::sort(next_active.begin(), next_active.end());
        next_active.erase(
            std::unique(next_active.begin(), next_active.end()),
            next_active.end());
        active.clear();
        for (int r : next_active) {
            if (find(r) == r && odd[r] && !on_boundary[r])
                active.push_back(r);
        }
        panicIf(!active.empty() && !grew_any,
                "odd cluster cannot reach the boundary: detector "
                "graph is disconnected");
    }

    // Peel: spanning forest over grown edges, rooted at the boundary
    // vertex where reachable; include the tree edge of every vertex
    // whose subtree holds odd defect parity.
    std::vector<int> tree_parent_edge(n, -1);
    std::vector<uint8_t> visited(n, 0);
    std::vector<int> order;
    order.reserve(n);

    auto bfs = [&](int root) {
        visited[root] = 1;
        std::vector<int> queue = {root};
        size_t head = 0;
        while (head < queue.size()) {
            const int u = queue[head++];
            order.push_back(u);
            for (int ei : incident_[u]) {
                if (!grown[ei])
                    continue;
                const auto &edge = edges_[ei];
                const int w = edge.u == u ? edge.v : edge.u;
                if (visited[w])
                    continue;
                visited[w] = 1;
                tree_parent_edge[w] = ei;
                queue.push_back(w);
            }
        }
    };

    bfs(boundaryVertex_);
    for (int det : defects) {
        if (!visited[det])
            bfs(det);
    }

    bool obs = false;
    std::vector<uint8_t> charge = is_defect;
    for (size_t i = order.size(); i-- > 0;) {
        const int v = order[i];
        const int ei = tree_parent_edge[v];
        if (ei < 0)
            continue;   // a root
        if (!charge[v])
            continue;
        const auto &edge = edges_[ei];
        const int parent_v = edge.u == v ? edge.v : edge.u;
        charge[v] = 0;
        charge[parent_v] ^= 1;
        obs ^= (edge.obs != 0);
    }
    // Remaining charge sits on roots: the boundary vertex absorbs it,
    // and defect-rooted trees are internally even by construction.
    return obs;
}

} // namespace qec
