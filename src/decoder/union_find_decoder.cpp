#include "decoder/union_find_decoder.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

UnionFindDecoder::UnionFindDecoder(const DetectorModel &dem, double p)
    : numDets_(dem.numDetectors()), boundaryVertex_(dem.numDetectors())
{
    for (const auto &edge : dem.edges) {
        if (edge.probability(p) <= 0.0)
            continue;
        const int v =
            edge.b == kBoundary ? boundaryVertex_ : edge.b;
        edges_.push_back({edge.a, v, edge.obsFlip ? (uint8_t)1
                                                  : (uint8_t)0});
    }

    // Flat CSR adjacency: counting sort of the edge endpoints, which
    // keeps each vertex's incident edges in edge-id order.
    const int n = numDets_ + 1;
    csrOffsets_.assign((size_t)n + 1, 0);
    for (const auto &edge : edges_) {
        ++csrOffsets_[(size_t)edge.u + 1];
        ++csrOffsets_[(size_t)edge.v + 1];
    }
    for (int v = 0; v < n; ++v)
        csrOffsets_[(size_t)v + 1] += csrOffsets_[v];
    csrEdges_.resize(2 * edges_.size());
    std::vector<int> cursor(csrOffsets_.begin(), csrOffsets_.end() - 1);
    for (size_t e = 0; e < edges_.size(); ++e) {
        csrEdges_[(size_t)cursor[edges_[e].u]++] = (int)e;
        csrEdges_[(size_t)cursor[edges_[e].v]++] = (int)e;
    }
}

bool
UnionFindDecoder::decodeSparse(const int *defects, size_t count,
                               DecodeWorkspace &ws) const
{
    if (count == 0)
        return false;

    const size_t n = (size_t)numDets_ + 1;
    ws.ensureUf(n, edges_.size());
    const uint64_t epoch = ++ws.epoch;

    // Lazily initialize a vertex the first time this call touches it:
    // untouched vertices cost nothing, so the pass scales with the
    // cluster sizes, not the lattice.
    auto touch = [&](int v) {
        if (ws.ufStamp[v] != epoch) {
            ws.ufStamp[v] = epoch;
            ws.ufParent[v] = v;
            ws.ufOdd[v] = 0;
            ws.ufOnBoundary[v] = 0;
            ws.ufInCluster[v] = 0;
            ws.ufExpanded[v] = 0;
            ws.ufIsDefect[v] = 0;
            ws.ufFHead[v] = -1;
            ws.ufFTail[v] = -1;
            ws.ufFSize[v] = 0;
            ws.ufFNext[v] = -1;
        }
    };
    auto find = [&](int v) {
        while (ws.ufParent[v] != v) {
            ws.ufParent[v] = ws.ufParent[ws.ufParent[v]];
            v = ws.ufParent[v];
        }
        return v;
    };
    auto pushFrontier = [&](int root, int v) {
        ws.ufFNext[v] = -1;
        if (ws.ufFTail[root] < 0)
            ws.ufFHead[root] = v;
        else
            ws.ufFNext[ws.ufFTail[root]] = v;
        ws.ufFTail[root] = v;
        ++ws.ufFSize[root];
    };

    ws.ufActive.clear();
    ws.ufBoundaryGrown.clear();
    for (size_t k = 0; k < count; ++k) {
        const int det = defects[k];
        touch(det);
        if (ws.ufIsDefect[det])
            continue;   // duplicate id: re-linking the frontier node
                        // onto itself would cycle the intrusive list
        ws.ufIsDefect[det] = 1;
        ws.ufOdd[det] = 1;
        ws.ufInCluster[det] = 1;
        pushFrontier(det, det);
        ws.ufActive.push_back(det);
    }
    touch(boundaryVertex_);
    ws.ufInCluster[boundaryVertex_] = 1;
    ws.ufOnBoundary[boundaryVertex_] = 1;

    auto merge = [&](int a, int b) {
        // Union by frontier size; returns the surviving root.
        a = find(a);
        b = find(b);
        if (a == b)
            return a;
        if (ws.ufFSize[a] < ws.ufFSize[b])
            std::swap(a, b);
        ws.ufParent[b] = a;
        ws.ufOdd[a] ^= ws.ufOdd[b];
        ws.ufOnBoundary[a] |= ws.ufOnBoundary[b];
        if (ws.ufFHead[b] >= 0) {   // concat b's frontier onto a's
            if (ws.ufFTail[a] < 0)
                ws.ufFHead[a] = ws.ufFHead[b];
            else
                ws.ufFNext[ws.ufFTail[a]] = ws.ufFHead[b];
            ws.ufFTail[a] = ws.ufFTail[b];
            ws.ufFSize[a] += ws.ufFSize[b];
            ws.ufFHead[b] = -1;
            ws.ufFTail[b] = -1;
            ws.ufFSize[b] = 0;
        }
        return a;
    };

    // Grow active clusters one edge layer at a time.
    while (!ws.ufActive.empty()) {
        ws.ufNextActive.clear();
        bool grew_any = false;
        for (int root : ws.ufActive) {
            int r = find(root);
            if (r != root || !ws.ufOdd[r] || ws.ufOnBoundary[r])
                continue;   // stale entry or neutralized meanwhile

            // Detach the frontier and expand every not-yet-expanded
            // vertex; freshly absorbed vertices land on the root's new
            // (empty) frontier for the next layer. Detached nodes can
            // never be re-linked mid-walk: only vertices outside every
            // cluster are pushed onto a frontier.
            int u = ws.ufFHead[r];
            ws.ufFHead[r] = -1;
            ws.ufFTail[r] = -1;
            ws.ufFSize[r] = 0;
            while (u >= 0) {
                const int next_u = ws.ufFNext[u];
                if (ws.ufExpanded[u]) {
                    u = next_u;
                    continue;
                }
                ws.ufExpanded[u] = 1;
                grew_any = true;
                const int row_end = csrOffsets_[(size_t)u + 1];
                for (int ci = csrOffsets_[u]; ci < row_end; ++ci) {
                    const int ei = csrEdges_[ci];
                    if (ws.ufEdgeStamp[ei] == epoch)
                        continue;
                    ws.ufEdgeStamp[ei] = epoch;
                    const Edge &edge = edges_[ei];
                    const int w = edge.u == u ? edge.v : edge.u;
                    if (w == boundaryVertex_ ||
                        u == boundaryVertex_)
                        ws.ufBoundaryGrown.push_back(ei);
                    touch(w);
                    if (!ws.ufInCluster[w]) {
                        ws.ufInCluster[w] = 1;
                        const int rr = find(u);
                        pushFrontier(rr, w);
                        ws.ufParent[w] = rr;
                    } else {
                        merge(u, w);
                    }
                }
                u = next_u;
            }
            r = find(root);
            if (ws.ufOdd[r] && !ws.ufOnBoundary[r])
                ws.ufNextActive.push_back(r);
        }
        // Deduplicate roots.
        std::sort(ws.ufNextActive.begin(), ws.ufNextActive.end());
        ws.ufNextActive.erase(std::unique(ws.ufNextActive.begin(),
                                          ws.ufNextActive.end()),
                              ws.ufNextActive.end());
        ws.ufActive.clear();
        for (int r : ws.ufNextActive) {
            if (find(r) == r && ws.ufOdd[r] && !ws.ufOnBoundary[r])
                ws.ufActive.push_back(r);
        }
        if (!ws.ufActive.empty() && !grew_any)
            panic("odd cluster cannot reach the boundary: detector "
                  "graph is disconnected");
    }

    // Peel: spanning forest over grown edges, rooted at the boundary
    // vertex where reachable; include the tree edge of every vertex
    // whose subtree holds odd defect parity. The boundary vertex's
    // adjacency row spans the whole lattice, so its grown edges come
    // from the list collected during growth instead of a CSR scan.
    ws.peelOrder.clear();

    auto bfs = [&](int root) {
        ws.peelStamp[root] = epoch;
        ws.peelParentEdge[root] = -1;
        ws.peelCharge[root] = ws.ufIsDefect[root];
        ws.peelQueue.clear();
        ws.peelQueue.push_back(root);
        size_t head = 0;
        while (head < ws.peelQueue.size()) {
            const int u = ws.peelQueue[head++];
            ws.peelOrder.push_back(u);
            const int *edge_ids;
            int degree;
            if (u == boundaryVertex_) {
                edge_ids = ws.ufBoundaryGrown.data();
                degree = (int)ws.ufBoundaryGrown.size();
            } else {
                edge_ids = csrEdges_.data() + csrOffsets_[u];
                degree = csrOffsets_[(size_t)u + 1] - csrOffsets_[u];
            }
            for (int k = 0; k < degree; ++k) {
                const int ei = edge_ids[k];
                if (ws.ufEdgeStamp[ei] != epoch)
                    continue;   // not grown this call
                const Edge &edge = edges_[ei];
                const int w = edge.u == u ? edge.v : edge.u;
                if (ws.peelStamp[w] == epoch)
                    continue;
                ws.peelStamp[w] = epoch;
                ws.peelParentEdge[w] = ei;
                ws.peelCharge[w] = ws.ufIsDefect[w];
                ws.peelQueue.push_back(w);
            }
        }
    };

    bfs(boundaryVertex_);
    for (size_t k = 0; k < count; ++k) {
        if (ws.peelStamp[defects[k]] != epoch)
            bfs(defects[k]);
    }

    bool obs = false;
    for (size_t i = ws.peelOrder.size(); i-- > 0;) {
        const int v = ws.peelOrder[i];
        const int ei = ws.peelParentEdge[v];
        if (ei < 0)
            continue;   // a root
        if (!ws.peelCharge[v])
            continue;
        const Edge &edge = edges_[ei];
        const int parent_v = edge.u == v ? edge.v : edge.u;
        ws.peelCharge[v] = 0;
        ws.peelCharge[parent_v] ^= 1;
        obs ^= (edge.obs != 0);
    }
    // Remaining charge sits on roots: the boundary vertex absorbs it,
    // and defect-rooted trees are internally even by construction.
    return obs;
}

} // namespace qec
