#include "decoder/union_find_decoder.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

UnionFindDecoder::UnionFindDecoder(const DetectorModel &dem, double p)
    : numDets_(dem.numDetectors()), boundaryVertex_(dem.numDetectors())
{
    for (const auto &edge : dem.edges) {
        if (edge.probability(p) <= 0.0)
            continue;
        const int v =
            edge.b == kBoundary ? boundaryVertex_ : edge.b;
        edges_.push_back({edge.a, v, edge.obsFlip ? (uint8_t)1
                                                  : (uint8_t)0});
    }

    // Flat CSR adjacency: counting sort of the edge endpoints, which
    // keeps each vertex's incident edges in edge-id order.
    const int n = numDets_ + 1;
    csrOffsets_.assign((size_t)n + 1, 0);
    for (const auto &edge : edges_) {
        ++csrOffsets_[(size_t)edge.u + 1];
        ++csrOffsets_[(size_t)edge.v + 1];
    }
    for (int v = 0; v < n; ++v)
        csrOffsets_[(size_t)v + 1] += csrOffsets_[v];
    csrAdj_.resize(2 * edges_.size());
    std::vector<int> cursor(csrOffsets_.begin(), csrOffsets_.end() - 1);
    for (size_t e = 0; e < edges_.size(); ++e) {
        const int eo = ((int)e << 1) | (int)edges_[e].obs;
        csrAdj_[(size_t)cursor[edges_[e].u]++] = {edges_[e].v, eo};
        csrAdj_[(size_t)cursor[edges_[e].v]++] = {edges_[e].u, eo};
    }

    // Streaming-commit growth bound: a cluster's region always stays
    // within ball(its defects, B) for B = the graph's max distance to
    // the boundary vertex — each alive growth layer expands a
    // cluster's ball radius by one, and once the ball around any of
    // its defects reaches the boundary the cluster is neutralized for
    // good (the boundary flag survives merges). BFS from the boundary
    // computes B once; a vertex the boundary cannot reach would leave
    // growth unbounded, so the bound is withheld then (decodes of
    // such graphs panic anyway if an odd cluster strands).
    std::vector<int> dist((size_t)n, -1);
    std::vector<int> queue;
    queue.reserve((size_t)n);
    dist[(size_t)boundaryVertex_] = 0;
    queue.push_back(boundaryVertex_);
    for (size_t h = 0; h < queue.size(); ++h) {
        const int u = queue[h];
        for (int ci = csrOffsets_[u]; ci < csrOffsets_[(size_t)u + 1];
             ++ci) {
            const int w = csrAdj_[(size_t)ci].other;
            if (dist[(size_t)w] < 0) {
                dist[(size_t)w] = dist[(size_t)u] + 1;
                commitBound_ =
                    std::max(commitBound_, dist[(size_t)w]);
                queue.push_back(w);
            }
        }
    }
    if ((int)queue.size() < n)
        commitBound_ = -1;
}

bool
UnionFindDecoder::decodeSparse(const int *defects, size_t count,
                               DecodeWorkspace &ws) const
{
    ws.lastReachHops = 0;
    if (count == 0)
        return false;

    const size_t n = (size_t)numDets_ + 1;
    ws.ensureUf(n, edges_.size());
    // Validity stamps are one byte per vertex/edge so both arrays stay
    // L1-resident (growth and peel are bound by exactly these random
    // loads). The byte epoch wraps every 255 calls; the wrap clears
    // the arrays once, so a stale stamp can never alias a live epoch.
    if (++ws.ufEpoch8 == 0) {
        std::fill(ws.ufNodeStamp.begin(), ws.ufNodeStamp.end(),
                  (uint8_t)0);
        std::fill(ws.ufEdgeStamp.begin(), ws.ufEdgeStamp.end(),
                  (uint8_t)0);
        ws.ufEpoch8 = 1;
    }
    const uint8_t e8 = ws.ufEpoch8;
    using DW = DecodeWorkspace;
    DW::UfNode *nodes = ws.ufNode.data();
    uint8_t *vstamp = ws.ufNodeStamp.data();
    int *deg = ws.peelDeg.data();
    uint8_t *charge = ws.peelCharge.data();
    ws.peelOrder.clear();   // every vertex touched this call

    // Lazily initialize a vertex the first time this call touches it:
    // untouched vertices cost nothing, so the pass scales with the
    // cluster sizes, not the lattice (and a touch is one cache line
    // plus the small peel arrays).
    auto touch = [&](int v) {
        if (vstamp[v] != e8) {
            vstamp[v] = e8;
            DW::UfNode &node = nodes[v];
            node.parent = v;
            node.fHead = -1;
            node.fTail = -1;
            node.fSize = 0;
            node.fNext = -1;
            node.flags = 0;
            deg[v] = 0;
            charge[v] = 0;
            ws.peelOrder.push_back(v);
        }
    };
    auto find = [&](int v) {
        while (nodes[v].parent != v) {
            nodes[v].parent = nodes[nodes[v].parent].parent;
            v = nodes[v].parent;
        }
        return v;
    };
    auto pushFrontier = [&](int root, int v) {
        nodes[v].fNext = -1;
        if (nodes[root].fTail < 0)
            nodes[root].fHead = v;
        else
            nodes[nodes[root].fTail].fNext = v;
        nodes[root].fTail = v;
        ++nodes[root].fSize;
    };

    ws.ufActive.clear();
    ws.ufGrown.clear();
    for (size_t k = 0; k < count; ++k) {
        const int det = defects[k];
        touch(det);
        if (charge[det])
            continue;   // duplicate id: re-linking the frontier node
                        // onto itself would cycle the intrusive list
        charge[det] = 1;
        nodes[det].flags = DW::kUfOdd | DW::kUfInCluster;
        pushFrontier(det, det);
        ws.ufActive.push_back(det);
    }
    touch(boundaryVertex_);
    nodes[boundaryVertex_].flags |=
        DW::kUfInCluster | DW::kUfBoundary;

    auto merge = [&](int a, int b) {
        // Union by frontier size; returns the surviving root.
        a = find(a);
        b = find(b);
        if (a == b)
            return a;
        if (nodes[a].fSize < nodes[b].fSize)
            std::swap(a, b);
        nodes[b].parent = a;
        // Parity XORs, boundary contact ORs.
        nodes[a].flags = (uint8_t)(
            (nodes[a].flags ^ (nodes[b].flags & DW::kUfOdd)) |
            (nodes[b].flags & DW::kUfBoundary));
        if (nodes[b].fHead >= 0) {   // concat b's frontier onto a's
            if (nodes[a].fTail < 0)
                nodes[a].fHead = nodes[b].fHead;
            else
                nodes[nodes[a].fTail].fNext = nodes[b].fHead;
            nodes[a].fTail = nodes[b].fTail;
            nodes[a].fSize += nodes[b].fSize;
            nodes[b].fHead = -1;
            nodes[b].fTail = -1;
            nodes[b].fSize = 0;
        }
        return a;
    };

    // Grow active clusters one edge layer at a time. The layer count
    // is the decode's hop-reach certificate: after L layers every
    // touched vertex lies within L hops of a fired detector, which is
    // what the component-composition guard sums.
    int layers = 0;
    while (!ws.ufActive.empty()) {
        ++layers;
        ws.ufNextActive.clear();
        bool grew_any = false;
        for (int root : ws.ufActive) {
            int r = find(root);
            if (r != root ||
                (nodes[r].flags & (DW::kUfOdd | DW::kUfBoundary)) !=
                    DW::kUfOdd)
                continue;   // stale entry or neutralized meanwhile

            // Detach the frontier and expand every not-yet-expanded
            // vertex; freshly absorbed vertices land on the root's new
            // (empty) frontier for the next layer. Detached nodes can
            // never be re-linked mid-walk: only vertices outside every
            // cluster are pushed onto a frontier.
            int u = nodes[r].fHead;
            nodes[r].fHead = -1;
            nodes[r].fTail = -1;
            nodes[r].fSize = 0;
            while (u >= 0) {
                const int next_u = nodes[u].fNext;
                if (nodes[u].flags & DW::kUfExpanded) {
                    u = next_u;
                    continue;
                }
                nodes[u].flags |= DW::kUfExpanded;
                grew_any = true;
                ++ws.statMatchedVerts;
                const int row_end = csrOffsets_[(size_t)u + 1];
                ws.statSettledNodes +=
                    (uint64_t)(row_end - csrOffsets_[u]);
                for (int ci = csrOffsets_[u]; ci < row_end; ++ci) {
                    const Adj a = csrAdj_[ci];
                    const int ei = a.eo >> 1;
                    if (ws.ufEdgeStamp[ei] == e8)
                        continue;
                    ws.ufEdgeStamp[ei] = e8;
                    const int w = a.other;
                    touch(w);
                    // Record the grown edge and maintain the peel
                    // pass's per-vertex grown degree here, while the
                    // edge is hot in registers, instead of re-walking
                    // CSR rows afterwards.
                    ws.ufGrown.push_back({u, w, a.eo});
                    ++deg[u];
                    ++deg[w];
                    if (!(nodes[w].flags & DW::kUfInCluster)) {
                        nodes[w].flags |= DW::kUfInCluster;
                        const int rr = find(u);
                        pushFrontier(rr, w);
                        nodes[w].parent = rr;
                    } else {
                        merge(u, w);
                    }
                }
                u = next_u;
            }
            r = find(root);
            if ((nodes[r].flags & (DW::kUfOdd | DW::kUfBoundary)) ==
                DW::kUfOdd)
                ws.ufNextActive.push_back(r);
        }
        // Deduplicate roots.
        std::sort(ws.ufNextActive.begin(), ws.ufNextActive.end());
        ws.ufNextActive.erase(std::unique(ws.ufNextActive.begin(),
                                          ws.ufNextActive.end()),
                              ws.ufNextActive.end());
        ws.ufActive.clear();
        for (int r : ws.ufNextActive) {
            if (find(r) == r &&
                (nodes[r].flags & (DW::kUfOdd | DW::kUfBoundary)) ==
                    DW::kUfOdd)
                ws.ufActive.push_back(r);
        }
        if (!ws.ufActive.empty() && !grew_any)
            panic("odd cluster cannot reach the boundary: detector "
                  "graph is disconnected");
    }
    ws.lastReachHops = layers;

    // Resolve defect charges over a BFS spanning forest of the grown
    // edge set, pushing each vertex's charge along its parent edge in
    // reverse visit order. The forest is built on a compact adjacency
    // assembled from the grown-edge records, so peel cost scales with
    // the grown edge count alone — the old implementation re-walked
    // every touched vertex's full CSR row (mostly ungrown slots),
    // which dominated whole-decode time.
    int *cursor = ws.peelCursor.data();
    int64_t *parent = ws.peelParent.data();
    int slots = 0;
    for (const int v : ws.peelOrder) {
        cursor[v] = slots;
        slots += deg[v];
    }
    ws.peelAdj.resize((size_t)slots);
    std::pair<int, int> *adj = ws.peelAdj.data();
    for (const auto &g : ws.ufGrown) {
        adj[cursor[g.u]++] = {g.v, g.eo};
        adj[cursor[g.v]++] = {g.u, g.eo};
    }
    // cursor[v] now points one past v's slots; the visited mark below
    // keeps deg recoverable so the slot range stays addressable.

    ws.peelQueue.clear();   // doubles as the forest's visit order
    size_t head = 0;
    auto visit = [&](int v, int64_t parent_packed) {
        parent[v] = parent_packed;
        deg[v] = -deg[v] - 1;   // mark visited, preserving the count
        ws.peelQueue.push_back(v);
    };
    auto drain = [&]() {
        while (head < ws.peelQueue.size()) {
            const int u = ws.peelQueue[head++];
            const int end = cursor[u];
            for (int k = end + deg[u] + 1; k < end; ++k) {
                const auto &[w, eo] = adj[k];
                if (deg[w] >= 0)
                    visit(w, ((int64_t)u << 32) | (uint32_t)eo);
            }
        }
    };
    // Root the boundary's component at the boundary first so its
    // charge drains there; remaining components are rooted at one of
    // their charged vertices.
    visit(boundaryVertex_, -1);
    drain();
    for (const int v : ws.peelOrder) {
        if (charge[v] && deg[v] >= 0) {
            visit(v, -1);
            drain();
        }
    }

    // Optional cluster export for the sliding-window driver: label
    // the connected components of the grown edge set EXCLUDING the
    // boundary vertex (BFS over the compact adjacency, never stepping
    // onto or out of the boundary). Clusters that were union-found
    // together only through the shared boundary vertex never
    // interacted — growth is never expanded through the boundary —
    // so they are independent evolutions and get separate labels,
    // which is exactly the granularity at which the window driver may
    // commit them.
    if (ws.recordClusters) {
        ws.clusters.clear();
        int *cid = ws.clusterOf.data();
        for (const int v : ws.peelOrder)
            cid[v] = -1;
        ws.ufNextActive.clear();   // free post-growth; BFS queue
        std::vector<int> &bfs = ws.ufNextActive;
        for (const int seed : ws.peelOrder) {
            if (seed == boundaryVertex_ || cid[seed] >= 0)
                continue;
            const int id = (int)ws.clusters.size();
            ws.clusters.push_back({seed, seed, 0});
            DecodeWorkspace::ClusterInfo &c = ws.clusters.back();
            bfs.clear();
            bfs.push_back(seed);
            cid[seed] = id;
            for (size_t h = 0; h < bfs.size(); ++h) {
                const int u = bfs[h];
                c.minVertex = std::min(c.minVertex, u);
                c.maxVertex = std::max(c.maxVertex, u);
                const int end = cursor[u];
                for (int k = end + deg[u] + 1; k < end; ++k) {
                    const int w = adj[k].first;
                    if (w == boundaryVertex_ || cid[w] >= 0)
                        continue;
                    cid[w] = id;
                    bfs.push_back(w);
                }
            }
        }
    }

    bool obs = false;
    for (size_t i = ws.peelQueue.size(); i-- > 0;) {
        const int v = ws.peelQueue[i];
        if (!charge[v])
            continue;
        const int64_t packed = parent[v];
        if (packed < 0)
            continue;   // tree root: the boundary absorbs its charge;
                        // isolated clusters are internally even, so a
                        // charged root always ends neutral
        const int parent_v = (int)(packed >> 32);
        const int eo = (int)(uint32_t)packed;
        charge[v] = 0;
        charge[parent_v] ^= 1;
        obs ^= (eo & 1) != 0;
        if (ws.recordClusters)
            ws.clusters[(size_t)ws.clusterOf[v]].obsParity ^=
                (uint8_t)(eo & 1);
        if (ws.recordCorrections)
            ws.corrections.push_back(
                {v == boundaryVertex_ ? -1 : v,
                 parent_v == boundaryVertex_ ? -1 : parent_v,
                 (uint8_t)(eo & 1)});
    }
    return obs;
}

} // namespace qec
