#include "decoder/union_find_decoder.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

UnionFindDecoder::UnionFindDecoder(const DetectorModel &dem, double p)
    : numDets_(dem.numDetectors()), boundaryVertex_(dem.numDetectors())
{
    for (const auto &edge : dem.edges) {
        if (edge.probability(p) <= 0.0)
            continue;
        const int v =
            edge.b == kBoundary ? boundaryVertex_ : edge.b;
        edges_.push_back({edge.a, v, edge.obsFlip ? (uint8_t)1
                                                  : (uint8_t)0});
    }

    // Flat CSR adjacency: counting sort of the edge endpoints, which
    // keeps each vertex's incident edges in edge-id order.
    const int n = numDets_ + 1;
    csrOffsets_.assign((size_t)n + 1, 0);
    for (const auto &edge : edges_) {
        ++csrOffsets_[(size_t)edge.u + 1];
        ++csrOffsets_[(size_t)edge.v + 1];
    }
    for (int v = 0; v < n; ++v)
        csrOffsets_[(size_t)v + 1] += csrOffsets_[v];
    csrEdges_.resize(2 * edges_.size());
    std::vector<int> cursor(csrOffsets_.begin(), csrOffsets_.end() - 1);
    for (size_t e = 0; e < edges_.size(); ++e) {
        csrEdges_[(size_t)cursor[edges_[e].u]++] = (int)e;
        csrEdges_[(size_t)cursor[edges_[e].v]++] = (int)e;
    }
}

bool
UnionFindDecoder::decodeSparse(const int *defects, size_t count,
                               DecodeWorkspace &ws) const
{
    if (count == 0)
        return false;

    const size_t n = (size_t)numDets_ + 1;
    ws.ensureUf(n, edges_.size());
    const uint64_t epoch = ++ws.epoch;
    DecodeWorkspace::UfNode *nodes = ws.ufNode.data();

    // Lazily initialize a vertex the first time this call touches it:
    // untouched vertices cost nothing, so the pass scales with the
    // cluster sizes, not the lattice (and a touch is one cache line).
    auto touch = [&](int v) {
        DecodeWorkspace::UfNode &node = nodes[v];
        if (node.stamp != epoch) {
            node.stamp = epoch;
            node.parent = v;
            node.odd = 0;
            node.onBoundary = 0;
            node.inCluster = 0;
            node.expanded = 0;
            node.isDefect = 0;
            node.fHead = -1;
            node.fTail = -1;
            node.fSize = 0;
            node.fNext = -1;
        }
    };
    auto find = [&](int v) {
        while (nodes[v].parent != v) {
            nodes[v].parent = nodes[nodes[v].parent].parent;
            v = nodes[v].parent;
        }
        return v;
    };
    auto pushFrontier = [&](int root, int v) {
        nodes[v].fNext = -1;
        if (nodes[root].fTail < 0)
            nodes[root].fHead = v;
        else
            nodes[nodes[root].fTail].fNext = v;
        nodes[root].fTail = v;
        ++nodes[root].fSize;
    };

    ws.ufActive.clear();
    ws.ufBoundaryGrown.clear();
    for (size_t k = 0; k < count; ++k) {
        const int det = defects[k];
        touch(det);
        if (nodes[det].isDefect)
            continue;   // duplicate id: re-linking the frontier node
                        // onto itself would cycle the intrusive list
        nodes[det].isDefect = 1;
        nodes[det].odd = 1;
        nodes[det].inCluster = 1;
        pushFrontier(det, det);
        ws.ufActive.push_back(det);
    }
    touch(boundaryVertex_);
    nodes[boundaryVertex_].inCluster = 1;
    nodes[boundaryVertex_].onBoundary = 1;

    auto merge = [&](int a, int b) {
        // Union by frontier size; returns the surviving root.
        a = find(a);
        b = find(b);
        if (a == b)
            return a;
        if (nodes[a].fSize < nodes[b].fSize)
            std::swap(a, b);
        nodes[b].parent = a;
        nodes[a].odd ^= nodes[b].odd;
        nodes[a].onBoundary |= nodes[b].onBoundary;
        if (nodes[b].fHead >= 0) {   // concat b's frontier onto a's
            if (nodes[a].fTail < 0)
                nodes[a].fHead = nodes[b].fHead;
            else
                nodes[nodes[a].fTail].fNext = nodes[b].fHead;
            nodes[a].fTail = nodes[b].fTail;
            nodes[a].fSize += nodes[b].fSize;
            nodes[b].fHead = -1;
            nodes[b].fTail = -1;
            nodes[b].fSize = 0;
        }
        return a;
    };

    // Grow active clusters one edge layer at a time.
    while (!ws.ufActive.empty()) {
        ws.ufNextActive.clear();
        bool grew_any = false;
        for (int root : ws.ufActive) {
            int r = find(root);
            if (r != root || !nodes[r].odd || nodes[r].onBoundary)
                continue;   // stale entry or neutralized meanwhile

            // Detach the frontier and expand every not-yet-expanded
            // vertex; freshly absorbed vertices land on the root's new
            // (empty) frontier for the next layer. Detached nodes can
            // never be re-linked mid-walk: only vertices outside every
            // cluster are pushed onto a frontier.
            int u = nodes[r].fHead;
            nodes[r].fHead = -1;
            nodes[r].fTail = -1;
            nodes[r].fSize = 0;
            while (u >= 0) {
                const int next_u = nodes[u].fNext;
                if (nodes[u].expanded) {
                    u = next_u;
                    continue;
                }
                nodes[u].expanded = 1;
                grew_any = true;
                const int row_end = csrOffsets_[(size_t)u + 1];
                for (int ci = csrOffsets_[u]; ci < row_end; ++ci) {
                    const int ei = csrEdges_[ci];
                    if (ws.ufEdgeStamp[ei] == epoch)
                        continue;
                    ws.ufEdgeStamp[ei] = epoch;
                    const Edge &edge = edges_[ei];
                    const int w = edge.u == u ? edge.v : edge.u;
                    if (w == boundaryVertex_ ||
                        u == boundaryVertex_)
                        ws.ufBoundaryGrown.push_back(ei);
                    touch(w);
                    if (!nodes[w].inCluster) {
                        nodes[w].inCluster = 1;
                        const int rr = find(u);
                        pushFrontier(rr, w);
                        nodes[w].parent = rr;
                    } else {
                        merge(u, w);
                    }
                }
                u = next_u;
            }
            r = find(root);
            if (nodes[r].odd && !nodes[r].onBoundary)
                ws.ufNextActive.push_back(r);
        }
        // Deduplicate roots.
        std::sort(ws.ufNextActive.begin(), ws.ufNextActive.end());
        ws.ufNextActive.erase(std::unique(ws.ufNextActive.begin(),
                                          ws.ufNextActive.end()),
                              ws.ufNextActive.end());
        ws.ufActive.clear();
        for (int r : ws.ufNextActive) {
            if (find(r) == r && nodes[r].odd && !nodes[r].onBoundary)
                ws.ufActive.push_back(r);
        }
        if (!ws.ufActive.empty() && !grew_any)
            panic("odd cluster cannot reach the boundary: detector "
                  "graph is disconnected");
    }

    // Peel: spanning forest over grown edges, rooted at the boundary
    // vertex where reachable; include the tree edge of every vertex
    // whose subtree holds odd defect parity. The boundary vertex's
    // adjacency row spans the whole lattice, so its grown edges come
    // from the list collected during growth instead of a CSR scan.
    ws.peelOrder.clear();
    DecodeWorkspace::PeelNode *peel = ws.peelNode.data();

    auto bfs = [&](int root) {
        peel[root].stamp = epoch;
        peel[root].parentEdge = -1;
        peel[root].charge = nodes[root].isDefect;
        ws.peelQueue.clear();
        ws.peelQueue.push_back(root);
        size_t head = 0;
        while (head < ws.peelQueue.size()) {
            const int u = ws.peelQueue[head++];
            ws.peelOrder.push_back(u);
            const int *edge_ids;
            int degree;
            if (u == boundaryVertex_) {
                edge_ids = ws.ufBoundaryGrown.data();
                degree = (int)ws.ufBoundaryGrown.size();
            } else {
                edge_ids = csrEdges_.data() + csrOffsets_[u];
                degree = csrOffsets_[(size_t)u + 1] - csrOffsets_[u];
            }
            for (int k = 0; k < degree; ++k) {
                const int ei = edge_ids[k];
                if (ws.ufEdgeStamp[ei] != epoch)
                    continue;   // not grown this call
                const Edge &edge = edges_[ei];
                const int w = edge.u == u ? edge.v : edge.u;
                if (peel[w].stamp == epoch)
                    continue;
                peel[w].stamp = epoch;
                peel[w].parentEdge = ei;
                peel[w].charge = nodes[w].isDefect;
                ws.peelQueue.push_back(w);
            }
        }
    };

    bfs(boundaryVertex_);
    for (size_t k = 0; k < count; ++k) {
        if (peel[defects[k]].stamp != epoch)
            bfs(defects[k]);
    }

    bool obs = false;
    for (size_t i = ws.peelOrder.size(); i-- > 0;) {
        const int v = ws.peelOrder[i];
        const int ei = peel[v].parentEdge;
        if (ei < 0)
            continue;   // a root
        if (!peel[v].charge)
            continue;
        const Edge &edge = edges_[ei];
        const int parent_v = edge.u == v ? edge.v : edge.u;
        peel[v].charge = 0;
        peel[parent_v].charge ^= 1;
        obs ^= (edge.obs != 0);
    }
    // Remaining charge sits on roots: the boundary vertex absorbs it,
    // and defect-rooted trees are internally even by construction.
    return obs;
}

} // namespace qec
