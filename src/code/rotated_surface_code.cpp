#include "code/rotated_surface_code.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

namespace
{

/**
 * Corner roles of a plaquette with top-left data coordinate (i, j).
 * Layer orders (hook-error safe): X sweeps NW,NE,SW,SE; Z sweeps
 * NW,SW,NE,SE. Expressed as (row offset, col offset) per layer.
 */
constexpr int kXOrder[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
constexpr int kZOrder[4][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};

} // namespace

Status
RotatedSurfaceCode::validateDistance(int distance)
{
    if (distance < 3 || distance % 2 == 0)
        return invalidArgument(
            "rotated surface code distance must be odd and >= 3, got " +
            std::to_string(distance));
    return okStatus();
}

RotatedSurfaceCode::RotatedSurfaceCode(int distance)
    : distance_(distance)
{
    panicIf(!validateDistance(distance).isOk(),
            "rotated surface code distance must be odd and >= 3");

    const int d = distance_;
    stabsOfData_.resize(numData());

    // Enumerate candidate plaquettes with top-left data corner (i, j),
    // i, j in [-1, d-1]. Color rule: (i + j) odd -> X, even -> Z.
    // Boundary rule: top/bottom rows host only X checks, left/right
    // columns only Z checks; single-corner plaquettes are dropped.
    int next_ancilla = numData();
    for (int i = -1; i < d; ++i) {
        for (int j = -1; j < d; ++j) {
            const bool is_x = ((i + j) & 1) != 0;
            const StabType type = is_x ? StabType::X : StabType::Z;

            const bool top_bottom = (i == -1 || i == d - 1);
            const bool left_right = (j == -1 || j == d - 1);
            if (top_bottom && left_right)
                continue;           // corner plaquette, weight 1
            if (top_bottom && !is_x)
                continue;
            if (left_right && is_x)
                continue;

            Stabilizer stab;
            stab.index = (int)stabs_.size();
            stab.type = type;
            stab.row = i + 0.5;
            stab.col = j + 0.5;

            const auto &order = is_x ? kXOrder : kZOrder;
            int weight = 0;
            for (int layer = 0; layer < 4; ++layer) {
                const int r = i + order[layer][0];
                const int c = j + order[layer][1];
                if (r < 0 || r >= d || c < 0 || c >= d)
                    continue;
                stab.dataInLayer[layer] = dataId(r, c);
                ++weight;
            }
            panicIf(weight != 2 && weight != 4,
                    "plaquette weight must be 2 or 4");

            for (int q : stab.dataInLayer) {
                if (q >= 0)
                    stab.support.push_back(q);
            }
            std::sort(stab.support.begin(), stab.support.end());

            stab.ancilla = next_ancilla++;
            stab.basisIndex = is_x ? (int)xStabs_.size()
                                   : (int)zStabs_.size();
            (is_x ? xStabs_ : zStabs_).push_back(stab.index);
            for (int q : stab.support)
                stabsOfData_[q].push_back(stab.index);
            stabs_.push_back(std::move(stab));
        }
    }

    panicIf((int)stabs_.size() != numStabilizers(),
            "stabilizer count must be d^2-1");
    panicIf(numZStabilizers() != numXStabilizers(),
            "X/Z stabilizer counts must match");

    ancillaToStab_.assign(numQubits(), -1);
    for (const auto &stab : stabs_)
        ancillaToStab_[stab.ancilla] = stab.index;

    // Logical Z runs along the top row (crosses the Z boundaries);
    // logical X runs along the left column. Both verified to commute
    // with every stabilizer in the test suite.
    for (int c = 0; c < d; ++c)
        logicalZ_.push_back(dataId(0, c));
    for (int r = 0; r < d; ++r)
        logicalX_.push_back(dataId(r, 0));
}

int
RotatedSurfaceCode::stabilizerOfAncilla(int ancilla) const
{
    panicIf(ancilla < numData() || ancilla >= numQubits(),
            "not an ancilla qubit id");
    return ancillaToStab_[ancilla];
}

} // namespace qec
