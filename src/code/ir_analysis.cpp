#include "code/ir_analysis.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "sim/bit_mask_sampler.h"

namespace qec
{

namespace
{

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::RoundStart: return "RoundStart";
      case OpType::DataNoise: return "DataNoise";
      case OpType::Reset: return "Reset";
      case OpType::H: return "H";
      case OpType::Cnot: return "Cnot";
      case OpType::Measure: return "Measure";
      case OpType::MeasureX: return "MeasureX";
      case OpType::LeakageIswap: return "LeakageIswap";
    }
    return "?";
}

const char *
tailKindName(IrTailKind kind)
{
    return kind == IrTailKind::SwapLrc ? "swap-lrc" : "dqlr";
}

std::string
placeholderName(int q)
{
    if (q == kTailDataQubit)
        return "D";
    if (q == kTailParityQubit)
        return "P";
    return "q" + std::to_string(q);
}

/** Diagnostic sink shared by the passes. */
struct PassContext
{
    const CircuitProgram &prog;
    const ErrorModel &em;
    IrAnalysisReport &report;

    void
    diag(IrSeverity severity, const char *pass, int32_t instr,
         std::string message, int32_t round = -1)
    {
        report.diagnostics.push_back(
            {severity, pass, instr, round, std::move(message)});
    }
};

// ---------------------------------------------------------------------
// Pass 1: qubit def-use / liveness.
//
// Backward dataflow over {finals; round body as a loop}. A qubit is
// live when some later instruction can propagate its frame/leak state
// into a measurement record. The round loop is solved as a fixpoint:
// live-out(body) = live-in(finals) ∪ live-in(body), iterated until the
// body's live-in stabilizes (monotone, so it terminates).
//
// Removability is a circuit-semantics statement: a dead gate cannot
// change any measurement outcome's distribution. Removal still shifts
// raw noise-stream positions (every noisy op consumes draws), so a
// peephole pass applying the list re-baselines per-shot fingerprints —
// it does not silently keep them.
// ---------------------------------------------------------------------

constexpr const char *kLiveness = "qubit-liveness";

using LiveSet = std::vector<uint8_t>;

/** Backward transfer for one pool op; returns live-before. */
void
transferOp(const Op &op, LiveSet &live)
{
    switch (op.type) {
      case OpType::RoundStart:
        break;
      case OpType::DataNoise:
      case OpType::H:
        // Pure use+def of q0: liveness unchanged.
        break;
      case OpType::Reset:
        // Defines q0 from nothing: kills its liveness.
        live[op.q0] = 0;
        break;
      case OpType::Cnot:
      case OpType::LeakageIswap:
        // Frames, leakage transport, and two-qubit noise couple the
        // operands both ways: either live-after makes both live-before.
        if (live[op.q0] || live[op.q1]) {
            live[op.q0] = 1;
            live[op.q1] = 1;
        }
        break;
      case OpType::Measure:
      case OpType::MeasureX:
        // Produces a record: uses q0, state survives.
        live[op.q0] = 1;
        break;
    }
}

bool
opIsDead(const Op &op, const LiveSet &live)
{
    switch (op.type) {
      case OpType::RoundStart:
      case OpType::Measure:
      case OpType::MeasureX:
        return false;
      case OpType::DataNoise:
      case OpType::Reset:
      case OpType::H:
        return !live[op.q0];
      case OpType::Cnot:
      case OpType::LeakageIswap:
        return !live[op.q0] && !live[op.q1];
    }
    return false;
}

/** The conservative use+def set of an LrcSlot branch: any scheduled
 *  tail touches one support data qubit and one parity qubit, so the
 *  branch may touch all of them. */
void
markSlotQubitsLive(const CircuitProgram &prog, LiveSet &live)
{
    for (int q : prog.supportData)
        live[q] = 1;
    for (int a : prog.stabAncilla)
        live[a] = 1;
}

/** One backward sweep over instrs[begin, end); when `ctx` is given,
 *  dead gates are reported and recorded. */
void
sweepBackward(const CircuitProgram &prog, size_t begin, size_t end,
              LiveSet &live, PassContext *ctx)
{
    for (size_t i = end; i-- > begin;) {
        const IrInst &inst = prog.instrs[i];
        switch (inst.op) {
          case IrOpcode::Gate: {
            const Op &op = prog.pool[inst.a];
            if (ctx && opIsDead(op, live)) {
                ctx->diag(IrSeverity::Warning, kLiveness, (int32_t)i,
                          std::string("dead gate: ") +
                              opTypeName(op.type) + " on qubit " +
                              std::to_string(op.q0) +
                              " can never reach a readout (removable)");
                ctx->report.removableInstructions.push_back(
                    (int32_t)i);
            }
            transferOp(op, live);
            break;
          }
          case IrOpcode::Readout:
            // Backward: the reset kills the ancilla, then the
            // measurement uses it — net live.
            live[prog.pool[inst.b].q0] = 1;
            break;
          case IrOpcode::LrcSlot:
            markSlotQubitsLive(prog, live);
            break;
          case IrOpcode::RoundBegin:
          case IrOpcode::RoundEnd:
            break;
        }
    }
}

void
passLiveness(PassContext &ctx)
{
    const CircuitProgram &prog = ctx.prog;
    LiveSet finals_in((size_t)prog.numQubits, 0);
    sweepBackward(prog, prog.bodyEnd + 1, prog.instrs.size(),
                  finals_in, nullptr);

    LiveSet body_in((size_t)prog.numQubits, 0);
    for (;;) {
        LiveSet out = finals_in;
        for (int q = 0; q < prog.numQubits; ++q)
            out[q] |= body_in[q];
        LiveSet next = out;
        sweepBackward(prog, prog.bodyBegin, prog.bodyEnd, next,
                      nullptr);
        if (next == body_in)
            break;
        body_in = std::move(next);
    }

    LiveSet out = finals_in;
    for (int q = 0; q < prog.numQubits; ++q)
        out[q] |= body_in[q];
    sweepBackward(prog, prog.bodyBegin, prog.bodyEnd, out, &ctx);
    LiveSet end_live((size_t)prog.numQubits, 0);
    sweepBackward(prog, prog.bodyEnd + 1, prog.instrs.size(), end_live,
                  &ctx);
    std::sort(ctx.report.removableInstructions.begin(),
              ctx.report.removableInstructions.end());
}

// ---------------------------------------------------------------------
// Pass 2: detector coverage.
// ---------------------------------------------------------------------

constexpr const char *kCoverage = "detector-coverage";

void
passDetectorCoverage(PassContext &ctx)
{
    const CircuitProgram &prog = ctx.prog;
    const IrDetectorMap &map = prog.detectors;

    // Column ownership must be a bijection: detector id r*cols + c
    // reads exactly one stabilizer's round-r outcome.
    std::vector<int> owner((size_t)map.cols, -1);
    for (int s = 0; s < prog.numStabs; ++s) {
        const int c = map.stabColumn[s];
        if (c < 0)
            continue;
        if (owner[c] >= 0)
            ctx.diag(IrSeverity::Error, kCoverage, -1,
                     "detector column " + std::to_string(c) +
                         " is claimed by stabilizers " +
                         std::to_string(owner[c]) + " and " +
                         std::to_string(s) +
                         "; each detector reads exactly one "
                         "measurement per round");
        else
            owner[c] = s;
    }
    for (int c = 0; c < map.cols; ++c)
        if (owner[c] < 0)
            ctx.diag(IrSeverity::Error, kCoverage, -1,
                     "detector column " + std::to_string(c) +
                         " is owned by no stabilizer: its detectors "
                         "reference measurements that are never "
                         "performed");

    // Per-round readout schedule: each column-bearing stabilizer must
    // be read out exactly once per round body (the detector window is
    // one round wide).
    std::vector<int> readouts((size_t)prog.numStabs, 0);
    std::vector<int32_t> first_readout((size_t)prog.numStabs, -1);
    for (size_t i = prog.bodyBegin; i < prog.bodyEnd; ++i) {
        if (prog.instrs[i].op != IrOpcode::Readout)
            continue;
        const int s = prog.instrs[i].a;
        if (first_readout[s] < 0)
            first_readout[s] = (int32_t)i;
        ++readouts[s];
    }
    int auxiliary = 0;
    for (int s = 0; s < prog.numStabs; ++s) {
        const int c = map.stabColumn[s];
        if (c >= 0) {
            if (readouts[s] == 0)
                ctx.diag(IrSeverity::Error, kCoverage, -1,
                         "stabilizer " + std::to_string(s) +
                             " owns detector column " +
                             std::to_string(c) +
                             " but the round body never reads it "
                             "out");
            else if (readouts[s] > 1)
                ctx.diag(IrSeverity::Error, kCoverage,
                         first_readout[s],
                         "stabilizer " + std::to_string(s) +
                             " is read out " +
                             std::to_string(readouts[s]) +
                             " times per round; its one-round "
                             "detector window admits exactly one "
                             "measurement");
        } else if (prog.detR0[s]) {
            ctx.diag(IrSeverity::Error, kCoverage, first_readout[s],
                     "stabilizer " + std::to_string(s) +
                         " is marked round-0 deterministic (detR0) "
                         "but owns no detector column: orphan "
                         "readout, detR0 mask inconsistent with the "
                         "detector map",
                     0);
        } else if (readouts[s] > 0) {
            ++auxiliary;
        }
    }
    if (auxiliary > 0)
        ctx.diag(IrSeverity::Note, kCoverage, -1,
                 std::to_string(auxiliary) +
                     " auxiliary readout(s) feed the adaptive "
                     "controller only (no detector column; round-0 "
                     "random in the memory basis)");

    // Column support must equal the owning stabilizer's support: the
    // final detector row is reconstructed from exactly those data
    // readouts.
    for (int c = 0; c < map.cols; ++c) {
        if (owner[c] < 0)
            continue;
        const int s = owner[c];
        std::vector<int> col(map.colSupportData.begin() +
                                 map.colSupportOffset[c],
                             map.colSupportData.begin() +
                                 map.colSupportOffset[(size_t)c + 1]);
        std::vector<int> stab(prog.supportData.begin() +
                                  prog.supportOffset[s],
                              prog.supportData.begin() +
                                  prog.supportOffset[(size_t)s + 1]);
        std::sort(col.begin(), col.end());
        std::sort(stab.begin(), stab.end());
        if (col != stab)
            ctx.diag(IrSeverity::Error, kCoverage, -1,
                     "detector column " + std::to_string(c) +
                         "'s data support differs from its owning "
                         "stabilizer " + std::to_string(s) +
                         "'s support CSR: the final detector row "
                         "would be reconstructed from the wrong "
                         "qubits");
    }

    // Every qubit a final detector row reads must be measured in the
    // final layer. (Observable qubits escalate to Errors in the
    // observable-reachability pass.)
    std::vector<uint8_t> final_measured((size_t)prog.numData, 0);
    for (size_t i = prog.bodyEnd + 1; i < prog.instrs.size(); ++i) {
        const Op &op = prog.pool[prog.instrs[i].a];
        if ((op.type == OpType::Measure ||
             op.type == OpType::MeasureX) &&
            op.q0 >= 0 && op.q0 < prog.numData)
            final_measured[op.q0] = 1;
    }
    std::vector<uint8_t> flagged((size_t)prog.numData, 0);
    for (int q : map.colSupportData) {
        if (final_measured[q] || flagged[q])
            continue;
        flagged[q] = 1;
        ctx.diag(IrSeverity::Warning, kCoverage, -1,
                 "data qubit " + std::to_string(q) +
                     " appears in a detector column's support but "
                     "has no final readout; the last detector row "
                     "cannot be completed");
    }
}

// ---------------------------------------------------------------------
// Pass 3: RNG stream-consumption accounting.
//
// Streams are keyed by probability and consumed per 64-lane block
// (engine contract). The pass tabulates, per stream, the draw sites
// one fully-active round executes: unconditional sites (gated by the
// full round mask — the structural stream skeleton) and
// state-conditional sites (gated on block-local simulator state).
// Round-invariance is established structurally: the body is replayed
// verbatim, so the per-round site sequence cannot vary.
//
// Branch independence — the "W=256/512 ≡ concatenation of W=64
// sub-runs" contract — requires every draw inside an LrcSlot tail to
// stay confined to the branch's own 64-lane block. The engine
// guarantees that exactly for the single-block replay repertoire
// (Reset/Cnot/LeakageIswap/Measure/MeasureX, executeBlock's fast
// cases, which draw through drawBlockWhere and blockRng only); any
// other op type falls back to the full-width path, whose block
// confinement is an accident of the mask rather than a structural
// property. A template op outside the repertoire is therefore an
// Error.
// ---------------------------------------------------------------------

constexpr const char *kStreamSync = "stream-sync";

struct StreamTable
{
    std::map<double, IrStreamUsage> rows;

    IrStreamUsage &
    row(double p)
    {
        IrStreamUsage &r = rows[p];
        r.probability = p;
        return r;
    }

    void
    add(double p, int uncond, int cond, bool in_final)
    {
        if (p <= 0.0 || p >= 1.0)
            return; // No stream: drawWhere degenerates to 0 / all.
        IrStreamUsage &r = row(p);
        if (in_final)
            r.finalSites += uncond;
        else {
            r.sitesPerRound += uncond;
            r.conditionalSitesPerRound += cond;
        }
    }

    void
    markTail(double p)
    {
        if (p <= 0.0 || p >= 1.0)
            return;
        row(p).usedByTail = true;
    }
};

/** The draw sites one op executes, mirroring the engine's op
 *  implementations site for site. */
void
accountOpDraws(const Op &op, const ErrorModel &em, StreamTable &table,
               bool in_final)
{
    const bool leak = em.leakageEnabled;
    switch (op.type) {
      case OpType::RoundStart:
        break;
      case OpType::DataNoise:
        table.add(em.p, 1, 0, in_final);
        if (leak) {
            table.add(em.leakInjectProb(), 1, 0, in_final);
            table.add(em.seepageProb(), 0, 1, in_final);
        }
        break;
      case OpType::Reset:
      case OpType::H:
        table.add(em.p, 1, 0, in_final);
        break;
      case OpType::Cnot:
      case OpType::LeakageIswap:
        // twoQubitNoise: one depolarizing draw + per-operand
        // leak/seep; transport (and DQLR excitation) fire only on
        // leaked-state lanes.
        table.add(em.p, 1, 0, in_final);
        if (leak) {
            table.add(em.leakInjectProb(), 2, 0, in_final);
            table.add(em.seepageProb(), 0, 2, in_final);
            table.add(em.pTransport, 0, 1, in_final);
            if (op.type == OpType::LeakageIswap)
                table.add(em.dqlrExciteProb, 0, 1, in_final);
        }
        break;
      case OpType::Measure:
      case OpType::MeasureX:
        table.add(em.p, 1, 0, in_final);
        if (leak)
            table.add(em.multiLevelMissProb(), 0, 1, in_final);
        break;
    }
}

bool
inSingleBlockRepertoire(OpType type)
{
    switch (type) {
      case OpType::Reset:
      case OpType::Cnot:
      case OpType::LeakageIswap:
      case OpType::Measure:
      case OpType::MeasureX:
        return true;
      default:
        return false;
    }
}

void
passStreamSync(PassContext &ctx)
{
    const CircuitProgram &prog = ctx.prog;
    const ErrorModel &em = ctx.em;
    StreamTable table;

    for (size_t i = prog.bodyBegin; i < prog.bodyEnd; ++i) {
        const IrInst &inst = prog.instrs[i];
        if (inst.op == IrOpcode::Gate) {
            accountOpDraws(prog.pool[inst.a], em, table, false);
        } else if (inst.op == IrOpcode::Readout) {
            accountOpDraws(prog.pool[inst.b], em, table, false);
            accountOpDraws(prog.pool[(size_t)inst.b + 1], em, table,
                           false);
        }
    }
    for (size_t i = prog.bodyEnd + 1; i < prog.instrs.size(); ++i)
        accountOpDraws(prog.pool[prog.instrs[i].a], em, table, true);

    bool tails_confined = true;
    for (const IrTailTemplate &tmpl : prog.tailTemplates) {
        for (size_t k = 0; k < tmpl.ops.size(); ++k) {
            const Op &op = tmpl.ops[k];
            if (!inSingleBlockRepertoire(op.type)) {
                tails_confined = false;
                ctx.diag(
                    IrSeverity::Error, kStreamSync, -1,
                    std::string(tailKindName(tmpl.kind)) +
                        " tail template op " + std::to_string(k) +
                        " (" + opTypeName(op.type) +
                        ") is outside the single-block replay "
                        "repertoire: its draws are not confined to "
                        "the branch's 64-lane block and would "
                        "desynchronize noise streams across batch "
                        "widths");
                continue;
            }
            StreamTable tail_draws;
            accountOpDraws(op, em, tail_draws, false);
            for (const auto &kv : tail_draws.rows)
                table.markTail(kv.first);
        }
    }

    // Which streams bindProgramStreams pre-registers (pool + tail
    // templates; registration is content-neutral — streams are keyed
    // by probability and lazily initialized per block — so this feeds
    // the evidence table, not a diagnostic).
    bool two_qubit = false, measure = false, iswap = false;
    const auto scan_op = [&](const Op &op) {
        if (op.type == OpType::Cnot)
            two_qubit = true;
        if (op.type == OpType::LeakageIswap)
            two_qubit = iswap = true;
        if (op.type == OpType::Measure || op.type == OpType::MeasureX)
            measure = true;
    };
    for (const Op &op : prog.pool)
        scan_op(op);
    for (const IrTailTemplate &tmpl : prog.tailTemplates)
        for (const Op &op : tmpl.ops)
            scan_op(op);
    const auto mark_bound = [&](double p) {
        if (p <= 0.0 || p >= BernoulliMaskSampler::kRareThreshold)
            return; // Dense/degenerate draws use no RareStream.
        auto it = table.rows.find(p);
        if (it != table.rows.end())
            it->second.boundByEngine = true;
    };
    mark_bound(em.p);
    if (em.leakageEnabled) {
        mark_bound(em.leakInjectProb());
        mark_bound(em.seepageProb());
        if (measure)
            mark_bound(em.multiLevelMissProb());
        if (two_qubit)
            mark_bound(em.pTransport);
        if (iswap)
            mark_bound(em.dqlrExciteProb);
    }

    for (const auto &kv : table.rows)
        ctx.report.streams.push_back(kv.second);

    std::ostringstream summary;
    summary << "streams:";
    for (const IrStreamUsage &row : ctx.report.streams)
        summary << " p=" << row.probability << " ("
                << row.sitesPerRound << " uncond + "
                << row.conditionalSitesPerRound << " cond/round, "
                << row.finalSites << " final"
                << (row.usedByTail ? ", tail" : "") << ")";
    ctx.diag(IrSeverity::Note, kStreamSync, -1, summary.str());
    ctx.diag(IrSeverity::Note, kStreamSync, -1,
             "round body replays verbatim for " +
                 std::to_string(prog.rounds) +
                 " rounds: the per-round draw-site sequence is "
                 "round-invariant by construction");
    if (tails_confined)
        ctx.diag(IrSeverity::Note, kStreamSync, -1,
                 "all LrcSlot tail draws are single-block: wide-batch "
                 "replay equals the concatenation of its 64-lane "
                 "sub-runs regardless of branches taken");
}

// ---------------------------------------------------------------------
// Pass 4: LRC slot / tail legality.
// ---------------------------------------------------------------------

constexpr const char *kLrcLegality = "lrc-legality";

void
passLrcLegality(PassContext &ctx)
{
    const CircuitProgram &prog = ctx.prog;

    std::vector<int32_t> slot_ids;
    int slots = 0;
    for (size_t i = prog.bodyBegin; i < prog.bodyEnd; ++i) {
        const IrInst &inst = prog.instrs[i];
        if (inst.op != IrOpcode::LrcSlot)
            continue;
        ++slots;
        if (inst.a < 0) {
            ctx.diag(IrSeverity::Error, kLrcLegality, (int32_t)i,
                     "LRC-slot id must be non-negative, got " +
                         std::to_string(inst.a));
            continue;
        }
        if (std::find(slot_ids.begin(), slot_ids.end(), inst.a) !=
            slot_ids.end())
            ctx.diag(IrSeverity::Error, kLrcLegality, (int32_t)i,
                     "duplicate LRC-slot id " +
                         std::to_string(inst.a) +
                         ": the controller's fill for this id would "
                         "replay twice per round");
        else
            slot_ids.push_back(inst.a);
    }
    if (slots == 0)
        ctx.diag(IrSeverity::Note, kLrcLegality, -1,
                 "program has no LrcSlot branch point; adaptive LRC "
                 "policies cannot act on it");

    // Tail templates: exactly one per kind, and exactly one for the
    // kind the program's slots request.
    int for_tail = 0;
    for (size_t t = 0; t < prog.tailTemplates.size(); ++t) {
        const IrTailTemplate &tmpl = prog.tailTemplates[t];
        if (tmpl.kind == prog.tail)
            ++for_tail;
        for (size_t u = 0; u < t; ++u)
            if (prog.tailTemplates[u].kind == tmpl.kind) {
                ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                         std::string("duplicate ") +
                             tailKindName(tmpl.kind) +
                             " tail template: the branch expansion "
                             "would be ambiguous");
                break;
            }
    }
    if (slots > 0 && for_tail == 0)
        ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                 std::string("program requests ") +
                     tailKindName(prog.tail) +
                     " tails but carries no template of that kind: "
                     "the LrcSlot branch is uncheckable");

    // Template well-formedness: ops act on the D/P placeholders only.
    for (const IrTailTemplate &tmpl : prog.tailTemplates) {
        const char *kind = tailKindName(tmpl.kind);
        bool measures_data = false;
        for (size_t k = 0; k < tmpl.ops.size(); ++k) {
            const Op &op = tmpl.ops[k];
            const bool two = op.type == OpType::Cnot ||
                             op.type == OpType::LeakageIswap;
            const auto placeholder = [](int q) {
                return q == kTailDataQubit || q == kTailParityQubit;
            };
            if (!placeholder(op.q0) || (two && !placeholder(op.q1)))
                ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                         std::string(kind) + " tail template op " +
                             std::to_string(k) +
                             " references a concrete qubit instead "
                             "of the D/P placeholders");
            else if (two && op.q0 == op.q1)
                ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                         std::string(kind) + " tail template op " +
                             std::to_string(k) +
                             " uses one placeholder for both "
                             "operands");
            if ((op.type == OpType::Measure ||
                 op.type == OpType::MeasureX) &&
                op.q0 == kTailDataQubit && op.lrcData)
                measures_data = true;
        }
        if (prog.maskReadoutOnLrc && tmpl.kind == prog.tail &&
            !measures_data)
            ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                     std::string(kind) +
                         " tail template never measures the data "
                         "qubit, but the program masks the plain "
                         "readout on LRC'd lanes: their syndrome "
                         "would be lost");
    }

    // Readout masking must match the tail kind's semantics: swap-LRC
    // replaces the plain readout (measures through D); DQLR is purely
    // additive (the normal ancilla readout still reports).
    const bool replaces = prog.tail == IrTailKind::SwapLrc;
    if (prog.maskReadoutOnLrc != replaces)
        ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                 replaces
                     ? std::string(
                           "swap-lrc tails replace the plain readout "
                           "but maskReadoutOnLrc is false: LRC'd "
                           "lanes would be measured twice per round")
                     : std::string(
                           "dqlr tails are additive but "
                           "maskReadoutOnLrc is true: LRC'd lanes "
                           "would lose their plain readout"));

    // The support CSR the tails index into: distinct parity qubits in
    // the ancilla region, non-empty supports.
    std::vector<int> seen_ancilla;
    for (int s = 0; s < prog.numStabs; ++s) {
        const int a = prog.stabAncilla[s];
        if (a < prog.numData)
            ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                     "stabilizer " + std::to_string(s) +
                         "'s parity qubit " + std::to_string(a) +
                         " lies in the data region; a tail would "
                         "swap data state into a data qubit");
        if (std::find(seen_ancilla.begin(), seen_ancilla.end(), a) !=
            seen_ancilla.end())
            ctx.diag(IrSeverity::Error, kLrcLegality, -1,
                     "two stabilizers share parity qubit " +
                         std::to_string(a) +
                         "; concurrent tails on them would collide");
        else
            seen_ancilla.push_back(a);
        if (prog.supportOffset[s] ==
            prog.supportOffset[(size_t)s + 1])
            ctx.diag(IrSeverity::Warning, kLrcLegality, -1,
                     "stabilizer " + std::to_string(s) +
                         " has empty support: no LRC pair can ever "
                         "be scheduled for it");
    }
}

// ---------------------------------------------------------------------
// Pass 5: observable reachability.
// ---------------------------------------------------------------------

constexpr const char *kObservable = "observable-reachability";

void
passObservableReachability(PassContext &ctx)
{
    const CircuitProgram &prog = ctx.prog;
    if (prog.detectors.observable.empty()) {
        ctx.diag(IrSeverity::Error, kObservable, -1,
                 "the logical observable has empty support: no final "
                 "readout can determine the logical outcome");
        return;
    }

    const OpType expected =
        prog.basis == Basis::Z ? OpType::Measure : OpType::MeasureX;
    std::vector<int> in_basis((size_t)prog.numData, 0);
    std::vector<int32_t> wrong_basis((size_t)prog.numData, -1);
    for (size_t i = prog.bodyEnd + 1; i < prog.instrs.size(); ++i) {
        const Op &op = prog.pool[prog.instrs[i].a];
        if (op.q0 < 0 || op.q0 >= prog.numData)
            continue;
        if (op.type == expected)
            ++in_basis[op.q0];
        else if (op.type == OpType::Measure ||
                 op.type == OpType::MeasureX)
            wrong_basis[op.q0] = (int32_t)i;
    }

    const char *basis_name = prog.basis == Basis::Z ? "Z" : "X";
    for (int q : prog.detectors.observable) {
        if (in_basis[q] == 1)
            continue;
        if (in_basis[q] > 1)
            ctx.diag(IrSeverity::Error, kObservable, -1,
                     "observable data qubit " + std::to_string(q) +
                         " is measured " +
                         std::to_string(in_basis[q]) +
                         " times in the final layer; the observable "
                         "parity would double-count it");
        else if (wrong_basis[q] >= 0)
            ctx.diag(IrSeverity::Error, kObservable, wrong_basis[q],
                     "observable data qubit " + std::to_string(q) +
                         "'s final readout is not in the memory-" +
                         basis_name + " basis");
        else
            ctx.diag(IrSeverity::Error, kObservable, -1,
                     "logical observable requires data qubit " +
                         std::to_string(q) +
                         ", which the final readout layer never "
                         "measures: the observable is unreachable");
    }
}

} // namespace

// ---------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------

const char *
irSeverityName(IrSeverity severity)
{
    switch (severity) {
      case IrSeverity::Error: return "error";
      case IrSeverity::Warning: return "warning";
      case IrSeverity::Note: return "note";
    }
    return "?";
}

std::string
IrDiagnostic::toString() const
{
    std::string out = irSeverityName(severity);
    out += "[";
    out += pass;
    out += "]";
    if (instr >= 0) {
        out += " @";
        out += std::to_string(instr);
    }
    if (round >= 0) {
        out += " r";
        out += std::to_string(round);
    }
    out += ": ";
    out += message;
    return out;
}

int
IrAnalysisReport::errorCount() const
{
    int n = 0;
    for (const IrDiagnostic &d : diagnostics)
        n += d.severity == IrSeverity::Error ? 1 : 0;
    return n;
}

int
IrAnalysisReport::warningCount() const
{
    int n = 0;
    for (const IrDiagnostic &d : diagnostics)
        n += d.severity == IrSeverity::Warning ? 1 : 0;
    return n;
}

Status
IrAnalysisReport::toStatus() const
{
    if (!hasErrors())
        return okStatus();
    std::string message = "circuit program fails static analysis:";
    for (const IrDiagnostic &d : diagnostics)
        if (d.severity == IrSeverity::Error)
            message += " [" + d.toString() + "]";
    return invalidArgument(std::move(message));
}

std::string
IrAnalysisReport::toString() const
{
    std::string out;
    for (const IrDiagnostic &d : diagnostics) {
        out += d.toString();
        out += "\n";
    }
    return out;
}

IrAnalysisReport
IrAnalyzer::analyze(const CircuitProgram &prog, const ErrorModel &em)
{
    IrAnalysisReport report;
    PassContext ctx{prog, em, report};
    passLiveness(ctx);
    passDetectorCoverage(ctx);
    passStreamSync(ctx);
    passLrcLegality(ctx);
    passObservableReachability(ctx);
    return report;
}

IrAnalysisReport
IrAnalyzer::analyze(const CircuitProgram &prog)
{
    return analyze(prog, ErrorModel::standard(1e-3));
}

Status
IrAnalyzer::verify(const CircuitProgram &prog, const ErrorModel &em)
{
    Status st = prog.validate();
    if (!st.isOk())
        return st;
    return analyze(prog, em).toStatus();
}

Status
IrAnalyzer::verify(const CircuitProgram &prog)
{
    return verify(prog, ErrorModel::standard(1e-3));
}

// ---------------------------------------------------------------------
// Listing formatter (the irlint dump).
// ---------------------------------------------------------------------

namespace
{

std::string
formatOp(const Op &op)
{
    std::string out = opTypeName(op.type);
    if (op.type == OpType::RoundStart)
        return out;
    out += " " + placeholderName(op.q0);
    if (op.type == OpType::Cnot || op.type == OpType::LeakageIswap)
        out += " " + placeholderName(op.q1);
    if (op.stab >= 0)
        out += " stab=" + std::to_string(op.stab);
    if (op.finalData)
        out += " final";
    if (op.lrcData)
        out += " lrc";
    return out;
}

} // namespace

std::string
formatProgramListing(const CircuitProgram &prog)
{
    std::ostringstream out;
    out << "program " << circuitFamilyName(prog.family) << " d="
        << prog.distance << " rounds=" << prog.rounds << " basis="
        << (prog.basis == Basis::Z ? "Z" : "X") << " tail="
        << tailKindName(prog.tail) << "\n";
    out << "  qubits=" << prog.numQubits << " (data=" << prog.numData
        << ") stabs=" << prog.numStabs << " detectorCols="
        << prog.detectors.cols << " maskReadoutOnLrc="
        << (prog.maskReadoutOnLrc ? "yes" : "no") << "\n";
    for (size_t i = 0; i < prog.instrs.size(); ++i) {
        const IrInst &inst = prog.instrs[i];
        out << (i == prog.bodyBegin ? " body>" : "      ");
        out << " " << i << ": ";
        switch (inst.op) {
          case IrOpcode::RoundBegin:
            out << "RoundBegin x" << inst.a;
            break;
          case IrOpcode::RoundEnd:
            out << "RoundEnd";
            break;
          case IrOpcode::Gate:
            out << formatOp(prog.pool[inst.a]);
            break;
          case IrOpcode::Readout:
            out << "Readout stab=" << inst.a << " ["
                << formatOp(prog.pool[inst.b]) << "; "
                << formatOp(prog.pool[(size_t)inst.b + 1]) << "]";
            break;
          case IrOpcode::LrcSlot:
            out << "LrcSlot id=" << inst.a;
            break;
        }
        out << "\n";
    }
    for (const IrTailTemplate &tmpl : prog.tailTemplates) {
        out << "  tail " << tailKindName(tmpl.kind) << ":";
        for (const Op &op : tmpl.ops)
            out << " [" << formatOp(op) << "]";
        out << "\n";
    }
    out << "  observable:";
    for (int q : prog.detectors.observable)
        out << " q" << q;
    out << "\n";
    return out.str();
}

} // namespace qec
