/**
 * @file
 * Shared plain types for the surface-code substrate.
 */

#ifndef QEC_CODE_TYPES_H
#define QEC_CODE_TYPES_H

#include <cstdint>

namespace qec
{

/** Stabilizer basis: X stabilizers detect Z errors and vice versa. */
enum class StabType : uint8_t { X, Z };

/** Memory experiment basis (which logical observable is preserved). */
enum class Basis : uint8_t { X, Z };

/** Single-qubit Pauli label. */
enum class Pauli : uint8_t { I, X, Y, Z };

/** Multi-level readout label: computational results or leaked. */
enum class Label : uint8_t { Zero, One, Leaked };

/** Returns the stabilizer type that protects a memory basis.
 *  Memory-Z experiments decode Z-type stabilizers (they detect the X
 *  errors that corrupt the logical-Z observable). */
constexpr StabType
protectingStabType(Basis basis)
{
    return basis == Basis::Z ? StabType::Z : StabType::X;
}

} // namespace qec

#endif // QEC_CODE_TYPES_H
