/**
 * @file
 * Builders for syndrome extraction rounds and full memory circuits.
 *
 * A plain round measures every stabilizer with 4 CNOT layers (Fig. 4(a)).
 * A round with an LRC for pair (D, P) appends, after the stabilizer
 * CNOTs: a 3-CNOT SWAP of D and P, a measurement + reset of D (which
 * now holds the parity state and yields the check bit; the reset clears
 * any leakage on D), and a 2-CNOT MOV returning the stored data state
 * from P to D (Fig. 4(b)). This is 9 two-qubit ops instead of 4, with 6
 * P-D interactions of which 4 precede D's reset — the counts analyzed
 * in Section 3.1 and asserted by the test suite.
 */

#ifndef QEC_CODE_BUILDER_H
#define QEC_CODE_BUILDER_H

#include <vector>

#include "code/circuit.h"
#include "code/rotated_surface_code.h"

namespace qec
{

/** Construct a bare Op of `type` acting on q0 (and q1 if two-qubit);
 *  measurement metadata is filled in by the caller. */
Op makeOp(OpType type, int q0, int q1 = -1);

/** An LRC assignment: data qubit `data` swaps with the parity qubit of
 *  stabilizer `stab` (which must be adjacent to `data`). */
struct LrcPair
{
    int data = -1;
    int stab = -1;

    bool
    operator==(const LrcPair &other) const
    {
        return data == other.data && stab == other.stab;
    }
};

/** Index span of one LRC's tail within a round's op list, used by the
 *  runner to squash the MOV when ERASER+M observes |L> on the data
 *  qubit (Section 4.6.2). */
struct LrcSpan
{
    int data = -1;
    int stab = -1;
    int parity = -1;          ///< Ancilla qubit id.
    size_t measureIndex = 0;  ///< Index of the data measurement op.
    size_t movBegin = 0;      ///< First MOV op index.
    size_t movEnd = 0;        ///< One past the last MOV op index.
};

/** One syndrome extraction round, ready for execution. */
struct RoundSchedule
{
    std::vector<Op> ops;
    std::vector<LrcSpan> lrcs;
};

/**
 * Build one syndrome extraction round.
 *
 * @param code  The code lattice.
 * @param round Round index stamped into measurement metadata.
 * @param lrcs  LRC assignments; each parity qubit may appear at most
 *              once and each data qubit must be adjacent to its stab.
 */
RoundSchedule buildRoundSchedule(const RotatedSurfaceCode &code,
                                 int round,
                                 const std::vector<LrcPair> &lrcs);

/**
 * Build the DQLR leakage-removal segment appended after a round
 * (Section A.2): for each pair, LeakageISWAP(D, P) then reset P.
 */
std::vector<Op> buildDqlrSegment(const RotatedSurfaceCode &code,
                                 const std::vector<LrcPair> &pairs);

/** Final transversal data measurement ops for a memory experiment. */
std::vector<Op> buildFinalMeasurement(const RotatedSurfaceCode &code,
                                      int rounds, Basis basis);

/**
 * Build the complete static (no-LRC) memory circuit: `rounds` plain
 * rounds followed by the final transversal data measurement. This is
 * the circuit the detector error model is derived from; adaptive
 * policies alter rounds at run time but are decoded against this
 * model, matching the paper's leakage-unaware decoder.
 */
Circuit buildMemoryCircuit(const RotatedSurfaceCode &code, int rounds,
                           Basis basis);

} // namespace qec

#endif // QEC_CODE_BUILDER_H
