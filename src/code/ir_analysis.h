/**
 * @file
 * Static analysis over the circuit IR: an IrAnalyzer pass manager that
 * runs dataflow passes over a CircuitProgram and emits structured
 * diagnostics, without ever executing (or mutating) the program.
 *
 * Passes (names are stable — CI and tests key on them):
 *
 *  | pass                     | proves |
 *  |--------------------------|--------|
 *  | qubit-liveness           | every gate's effect can reach a Readout; dead gates are reported with a machine-readable removable-instruction list (the peephole input) |
 *  | detector-coverage        | every detector column owns exactly one per-round Readout, no orphan measurements, round-0 mask consistent with detR0, column supports match the stabilizer CSR |
 *  | stream-sync              | per-block RNG stream consumption is identical across rounds and confined to a branch's own 64-lane block for every LrcSlot tail — the static form of the "W=256/512 ≡ concatenation of W=64 sub-runs" contract |
 *  | lrc-legality             | unique slot ids, tail templates well-formed against the stabilizer-support CSR, readout masking consistent with the tail kind |
 *  | observable-reachability  | the logical observable's support is measured, in the memory basis, in the final readout layer |
 *
 * Severity policy: Error = replay or decode would be wrong (checked
 * compilation refuses the program); Warning = suspicious but runnable
 * (dead gates, unmeasured detector support); Note = analysis evidence
 * (stream tables, auxiliary readouts).
 */

#ifndef QEC_CODE_IR_ANALYSIS_H
#define QEC_CODE_IR_ANALYSIS_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "code/circuit_ir.h"
#include "sim/error_model.h"

namespace qec
{

enum class IrSeverity : uint8_t
{
    Error,   ///< The program must not be executed.
    Warning, ///< Runnable, but something is wasted or unprotected.
    Note,    ///< Analysis evidence; no action needed.
};

const char *irSeverityName(IrSeverity severity);

/** One analyzer finding, anchored to an instruction when possible. */
struct IrDiagnostic
{
    IrSeverity severity = IrSeverity::Note;
    /** Stable pass name (see the file header's table). */
    const char *pass = "";
    /** Instruction index into CircuitProgram::instrs, -1 when the
     *  finding is program-wide. */
    int32_t instr = -1;
    /** Round the finding is specific to, -1 when it holds for every
     *  replayed round (the body is round-invariant, so most do). */
    int32_t round = -1;
    std::string message;

    /** "error[pass] @12 r0: message" for logs and irlint. */
    std::string toString() const;
};

/** Static per-round draw accounting for one probability stream
 *  (stream-sync evidence). Only structurally unconditional draw sites
 *  are counted — sites whose gate mask is the full round mask; draws
 *  gated on simulator state (seepage on leaked lanes, transport on
 *  mixed-leak CNOTs, discriminator misses) consume per-block skip
 *  counters keyed to block-local state and are tallied separately. */
struct IrStreamUsage
{
    double probability = 0.0;
    /** Unconditional draw sites per replayed round body. */
    int sitesPerRound = 0;
    /** State-conditional draw sites per replayed round body. */
    int conditionalSitesPerRound = 0;
    /** Unconditional draw sites in the final readout layer. */
    int finalSites = 0;
    /** True when an LrcSlot tail template also draws from it. */
    bool usedByTail = false;
    /** True when BatchFrameSimulatorT::bindProgramStreams pre-registers
     *  it for this program under the given error model. */
    bool boundByEngine = false;
};

struct IrAnalysisReport
{
    std::vector<IrDiagnostic> diagnostics;
    /** qubit-liveness output: instruction indices whose removal
     *  provably cannot change any Readout record. Sorted ascending;
     *  the input the ROADMAP peephole passes consume. */
    std::vector<int32_t> removableInstructions;
    /** stream-sync output: one row per distinct probability stream. */
    std::vector<IrStreamUsage> streams;

    int errorCount() const;
    int warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }
    /** OK, or InvalidArgument naming every Error-severity finding. */
    [[nodiscard]] Status toStatus() const;
    /** All diagnostics, one per line. */
    std::string toString() const;
};

/** The pass manager. Stateless; all entry points are read-only over
 *  the program. */
class IrAnalyzer
{
  public:
    /** Run every pass under `em` (stream probabilities and leakage
     *  gating come from the model; all Error conditions are
     *  model-independent). */
    static IrAnalysisReport analyze(const CircuitProgram &prog,
                                    const ErrorModel &em);
    /** analyze() under the paper's standard model at p = 1e-3. */
    static IrAnalysisReport analyze(const CircuitProgram &prog);

    /** validate() + analyze(), collapsed to a Status: OK exactly when
     *  the program is structurally valid and analyzes Error-free. */
    [[nodiscard]] static Status verify(const CircuitProgram &prog,
                                       const ErrorModel &em);
    [[nodiscard]] static Status verify(const CircuitProgram &prog);
};

/** Human-readable instruction listing (the irlint dump): header,
 *  per-instruction decode with body markers, detector-map and
 *  tail-template summaries. */
std::string formatProgramListing(const CircuitProgram &prog);

} // namespace qec

#endif // QEC_CODE_IR_ANALYSIS_H
