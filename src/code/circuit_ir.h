#pragma once

/** Circuit IR: a flat, replayable instruction stream compiled from a
 *  protocol description and executed by the batch frame simulator.
 *
 *  The IR decouples "what circuit" from "how fast": a CircuitProgram
 *  holds one round body plus the final transversal readout as indices
 *  into an op pool, and the engine replays that body `rounds` times
 *  with the same word-level op/noise helpers the hand-wired driver
 *  used. Divergent adaptive-LRC tails are IR branch points (LrcSlot
 *  instructions) that the controller fills per lane/word at replay
 *  time, so adding a protocol means adding a compiler path — not an
 *  engine edit.
 *
 *  Instruction set:
 *
 *  | opcode     | a                  | b              | effect at replay |
 *  |------------|--------------------|----------------|------------------|
 *  | Gate       | op-pool index      | —              | execute pool[a] verbatim on the masked lanes (gates carry their own noise channels; each channel resolves to a per-probability RareStream id in the engine) |
 *  | Readout    | stabilizer index   | op-pool index  | stamp pool[b] (Measure) with the current round, mask out LRC'd lanes when the protocol replaces the plain readout, measure + reset |
 *  | LrcSlot    | slot id (== round-relative slot) | — | branch point: the controller supplies per-64-lane-block divergent tails (swap-LRC or DQLR) that the engine expands with block-local masks |
 *  | RoundBegin | trip count (rounds)| —              | marks the start of the replayed round body |
 *  | RoundEnd   | —                  | —              | marks the end of the round body; instructions after it are the final transversal measurement |
 *
 *  Draw-order contract: replaying a compiled program must consume the
 *  per-64-lane-block noise streams in exactly the order the hand-wired
 *  driver did, so per-shot verdicts stay bit-identical at every batch
 *  width. The compiler guarantees this by emitting the round body in
 *  schedule order and the engine by reusing execute()/executeBlock()
 *  unchanged.
 */

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "code/circuit.h"
#include "code/rotated_surface_code.h"
#include "code/types.h"

namespace qec
{

/** Which protocol family a program encodes. Families other than the
 *  rotated-surface-code memory experiment exist purely as compiler
 *  paths over the same engine. */
enum class CircuitFamily : uint8_t
{
    SurfaceMemory,
    RepetitionMemory,
};

/** How an LrcSlot branch removes leakage when the controller fills it. */
enum class IrTailKind : uint8_t
{
    SwapLrc, ///< swap-based LRC: 3 CNOTs + multi-level readout + resets
    Dqlr,    ///< iSWAP-in-|2> DQLR: LeakageIswap + parity reset
};

enum class IrOpcode : uint8_t
{
    Gate,
    Readout,
    LrcSlot,
    RoundBegin,
    RoundEnd,
};

struct IrInst
{
    IrOpcode op;
    int32_t a = -1;
    int32_t b = -1;
};

/** One divergent LRC tail the controller scheduled for a 64-lane block:
 *  stabilizer `stab` redirects its readout through data qubit `data` on
 *  the lanes in `mask` (a block-local 64-bit lane mask). */
struct IrLrcTail
{
    int stab = -1;
    int data = -1;
    uint64_t mask = 0;
};

/** Placeholder qubit ids inside IrTailTemplate ops, resolved at replay
 *  time to the scheduled pair's data / parity qubit. */
constexpr int kTailDataQubit = -2;
constexpr int kTailParityQubit = -3;

/** The op sequence a filled LrcSlot branch expands to for one tail
 *  kind, written against the kTailDataQubit/kTailParityQubit
 *  placeholders. Conditional suffix ops (the ERASER+M MOV squash) are
 *  listed unconditionally — the template describes the superset of ops
 *  a tail may run, which is what static analysis needs. The engine's
 *  executeLrcTail stays the hardcoded expansion (replay never reads
 *  templates), so templates are pure metadata; test_ir_analysis pins
 *  the two against each other. */
struct IrTailTemplate
{
    IrTailKind kind = IrTailKind::SwapLrc;
    std::vector<Op> ops;
};

/** The measure→detector/observable binding the extractor reads instead
 *  of lattice-walking the code. Columns index detectors within one
 *  round (detector id = round * cols + column). */
struct IrDetectorMap
{
    int cols = 0;
    int numData = 0;
    /** Per stabilizer: detector column, or -1 when the stabilizer's
     *  basis does not produce detectors for this memory basis. */
    std::vector<int> stabColumn;
    /** CSR over columns -> data-qubit support, used to reconstruct the
     *  final detector row from the transversal data readout. */
    std::vector<int> colSupportOffset;
    std::vector<int> colSupportData;
    /** Data qubits whose final readouts XOR into the logical observable. */
    std::vector<int> observable;
};

struct CircuitProgram
{
    CircuitFamily family = CircuitFamily::SurfaceMemory;
    IrTailKind tail = IrTailKind::SwapLrc;
    Basis basis = Basis::Z;
    int distance = 0;
    int rounds = 0;
    int numQubits = 0;
    int numData = 0;
    int numStabs = 0;
    /** True when a filled LrcSlot replaces the plain readout of its
     *  stabilizer (swap-LRC); false when the tail is purely additive
     *  (DQLR measures through the normal ancilla readout). */
    bool maskReadoutOnLrc = false;

    /** Op pool referenced by Gate/Readout instructions. Pool ops are
     *  executed verbatim (rounds are NOT restamped for body gates —
     *  the engine's gate/noise helpers ignore Op::round); Readout
     *  measurement ops are copied and stamped per round. */
    std::vector<Op> pool;
    /** [RoundBegin, body..., RoundEnd, final gates...] */
    std::vector<IrInst> instrs;
    /** Index of the first body instruction (after RoundBegin). */
    size_t bodyBegin = 0;
    /** Index of the RoundEnd instruction. */
    size_t bodyEnd = 0;

    /** Per stabilizer: its ancilla qubit (parity qubit for LRC tails). */
    std::vector<int> stabAncilla;
    /** CSR over stabilizers -> data-qubit support (LRC-pair validity). */
    std::vector<int> supportOffset;
    std::vector<int> supportData;
    /** Per stabilizer: 1 when its first-round outcome is deterministic
     *  in the memory basis (so round 0 raises a detection event on a
     *  nonzero readout). */
    std::vector<uint8_t> detR0;

    IrDetectorMap detectors;

    /** Tail expansions for the LrcSlot branch points (one per
     *  IrTailKind the program's slots can request). */
    std::vector<IrTailTemplate> tailTemplates;

    /** Structural validation: dangling qubit/stabilizer indices,
     *  unclosed or misplaced round-loop markers, duplicate LRC-slot
     *  ids, detector-map shape. Returns the first violation found.
     *  Semantic checks (detector coverage, stream sync, tail
     *  legality, observable reachability) live in IrAnalyzer. */
    [[nodiscard]] Status validate() const;

    /** True when `data` lies in `stab`'s support (valid LRC pairing). */
    bool supportContains(int stab, int data) const;

    /** Reconstruct the LRC-free flat circuit this program replays —
     *  round bodies restamped per round plus the final transversal
     *  measurement — for detector-model enumeration. Matches
     *  buildMemoryCircuit() op-for-op for the surface family. A
     *  non-negative `rounds_override` rebuilds the same body for a
     *  different round count (the DEM tiler's short template). */
    Circuit baseCircuit(int rounds_override = -1) const;
};

/** Lowers protocol descriptions into CircuitPrograms. */
class CircuitCompiler
{
  public:
    /** Lower the rotated-surface-code memory protocol (any basis, any
     *  LRC tail kind). The emitted round body replays bit-identically
     *  to buildRoundSchedule()-driven execution. */
    static CircuitProgram surfaceMemory(const RotatedSurfaceCode &code,
                                        int rounds, Basis basis,
                                        IrTailKind tail);

    /** Lower a distance-d repetition-code (bit-flip) memory protocol:
     *  d data qubits in a line, d-1 ZZ checks, Z memory only. Exists
     *  entirely as a compiler path — no engine changes. */
    static CircuitProgram repetitionMemory(int distance, int rounds);

    /** Checked lowering: compile, then run validate() and the full
     *  IrAnalyzer pass stack, refusing (InvalidArgument, never panic)
     *  any program carrying Error-severity diagnostics. The form the
     *  sweep executor and other recoverable callers use. */
    [[nodiscard]] static StatusOr<CircuitProgram>
    surfaceMemoryChecked(const RotatedSurfaceCode &code, int rounds,
                         Basis basis, IrTailKind tail);
    [[nodiscard]] static StatusOr<CircuitProgram>
    repetitionMemoryChecked(int distance, int rounds);
};

const char *circuitFamilyName(CircuitFamily family);

} // namespace qec
