#include "code/builder.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

Op
makeOp(OpType type, int q0, int q1)
{
    Op op;
    op.type = type;
    op.q0 = q0;
    op.q1 = q1;
    return op;
}

namespace
{

/** Append the plain measure+reset tail for one stabilizer. */
void
appendPlainReadout(std::vector<Op> &ops, const Stabilizer &stab,
                   int round)
{
    Op m = makeOp(OpType::Measure, stab.ancilla);
    m.stab = stab.index;
    m.round = round;
    ops.push_back(m);
    ops.push_back(makeOp(OpType::Reset, stab.ancilla));
}

/** Append the LRC tail for one stabilizer; returns the span record. */
LrcSpan
appendLrcReadout(std::vector<Op> &ops, const Stabilizer &stab,
                 int data, int round)
{
    LrcSpan span;
    span.data = data;
    span.stab = stab.index;
    span.parity = stab.ancilla;

    // SWAP D <-> P: three CNOTs. Afterwards (when neither qubit is
    // leaked) D holds the parity state and P holds the data state.
    ops.push_back(makeOp(OpType::Cnot, data, stab.ancilla));
    ops.push_back(makeOp(OpType::Cnot, stab.ancilla, data));
    ops.push_back(makeOp(OpType::Cnot, data, stab.ancilla));

    // Measure the data qubit: this reports the parity check for this
    // round. Resetting it afterwards clears any leakage it carried.
    Op m = makeOp(OpType::Measure, data);
    m.stab = stab.index;
    m.round = round;
    m.lrcData = true;
    span.measureIndex = ops.size();
    ops.push_back(m);
    ops.push_back(makeOp(OpType::Reset, data));

    // MOV the stored data state back from P into D (2 CNOTs suffice
    // because D is freshly reset). P is left in |0>, so it needs no
    // separate reset before the next round.
    span.movBegin = ops.size();
    ops.push_back(makeOp(OpType::Cnot, stab.ancilla, data));
    ops.push_back(makeOp(OpType::Cnot, data, stab.ancilla));
    span.movEnd = ops.size();
    return span;
}

} // namespace

RoundSchedule
buildRoundSchedule(const RotatedSurfaceCode &code, int round,
                   const std::vector<LrcPair> &lrcs)
{
    RoundSchedule sched;
    auto &ops = sched.ops;

    // Validate the LRC assignment: unique parity qubits, unique data
    // qubits, adjacency.
    std::vector<uint8_t> stab_used(code.numStabilizers(), 0);
    std::vector<uint8_t> data_used(code.numData(), 0);
    std::vector<int> lrc_of_stab(code.numStabilizers(), -1);
    for (size_t i = 0; i < lrcs.size(); ++i) {
        const auto &pair = lrcs[i];
        panicIf(pair.stab < 0 || pair.stab >= code.numStabilizers(),
                "LRC references an invalid stabilizer");
        panicIf(stab_used[pair.stab]++,
                "two LRCs share one parity qubit in the same round");
        panicIf(data_used[pair.data]++,
                "one data qubit has two LRCs in the same round");
        const auto &support = code.stabilizer(pair.stab).support;
        panicIf(std::find(support.begin(), support.end(), pair.data)
                    == support.end(),
                "LRC data qubit is not adjacent to its parity qubit");
        lrc_of_stab[pair.stab] = (int)i;
    }

    Op start = makeOp(OpType::RoundStart, -1);
    start.round = round;
    ops.push_back(start);

    // Round-start data noise: idle depolarizing + leakage injection.
    for (int q = 0; q < code.numData(); ++q)
        ops.push_back(makeOp(OpType::DataNoise, q));

    // Basis change for X stabilizers.
    for (int s : code.xStabilizers())
        ops.push_back(makeOp(OpType::H, code.stabilizer(s).ancilla));

    // Four CNOT layers; X stabilizers drive ancilla->data, Z
    // stabilizers data->ancilla.
    for (int layer = 0; layer < 4; ++layer) {
        for (const auto &stab : code.stabilizers()) {
            const int data = stab.dataInLayer[layer];
            if (data < 0)
                continue;
            if (stab.type == StabType::X)
                ops.push_back(makeOp(OpType::Cnot, stab.ancilla, data));
            else
                ops.push_back(makeOp(OpType::Cnot, data, stab.ancilla));
        }
    }

    for (int s : code.xStabilizers())
        ops.push_back(makeOp(OpType::H, code.stabilizer(s).ancilla));

    // Readout: plain stabilizers first, then LRC tails (their SWAPs
    // reuse data qubits whose stabilizer CNOTs are all complete).
    for (const auto &stab : code.stabilizers()) {
        if (lrc_of_stab[stab.index] < 0)
            appendPlainReadout(ops, stab, round);
    }
    for (const auto &pair : lrcs) {
        const auto &stab = code.stabilizer(pair.stab);
        sched.lrcs.push_back(
            appendLrcReadout(ops, stab, pair.data, round));
    }
    return sched;
}

std::vector<Op>
buildDqlrSegment(const RotatedSurfaceCode &code,
                 const std::vector<LrcPair> &pairs)
{
    std::vector<Op> ops;
    for (const auto &pair : pairs) {
        const auto &stab = code.stabilizer(pair.stab);
        ops.push_back(makeOp(OpType::LeakageIswap, pair.data,
                             stab.ancilla));
        ops.push_back(makeOp(OpType::Reset, stab.ancilla));
    }
    return ops;
}

std::vector<Op>
buildFinalMeasurement(const RotatedSurfaceCode &code, int rounds,
                      Basis basis)
{
    std::vector<Op> ops;
    const OpType type =
        basis == Basis::Z ? OpType::Measure : OpType::MeasureX;
    for (int q = 0; q < code.numData(); ++q) {
        Op m = makeOp(type, q);
        m.round = rounds;
        m.finalData = true;
        ops.push_back(m);
    }
    return ops;
}

Circuit
buildMemoryCircuit(const RotatedSurfaceCode &code, int rounds,
                   Basis basis)
{
    panicIf(rounds < 1, "memory circuit needs at least one round");

    Circuit circuit;
    circuit.numQubits = code.numQubits();
    circuit.numRounds = rounds;
    circuit.basis = basis;

    for (int r = 0; r < rounds; ++r) {
        circuit.roundBegin.push_back(circuit.ops.size());
        RoundSchedule round = buildRoundSchedule(code, r, {});
        circuit.ops.insert(circuit.ops.end(), round.ops.begin(),
                           round.ops.end());
    }
    circuit.roundBegin.push_back(circuit.ops.size());
    auto final_ops = buildFinalMeasurement(code, rounds, basis);
    circuit.ops.insert(circuit.ops.end(), final_ops.begin(),
                       final_ops.end());
    return circuit;
}

} // namespace qec
