#include "code/circuit.h"

#include <sstream>

namespace qec
{

int
Circuit::countOps(OpType type) const
{
    int n = 0;
    for (const auto &op : ops)
        n += (op.type == type) ? 1 : 0;
    return n;
}

int
Circuit::countTwoQubitOps() const
{
    return countOps(OpType::Cnot) + countOps(OpType::LeakageIswap);
}

int
Circuit::countMeasurements() const
{
    return countOps(OpType::Measure) + countOps(OpType::MeasureX);
}

std::string
Circuit::toString() const
{
    std::ostringstream out;
    for (const auto &op : ops) {
        switch (op.type) {
          case OpType::RoundStart:
            out << "ROUND " << op.round << "\n";
            break;
          case OpType::DataNoise:
            out << "  NOISE q" << op.q0 << "\n";
            break;
          case OpType::Reset:
            out << "  R q" << op.q0 << "\n";
            break;
          case OpType::H:
            out << "  H q" << op.q0 << "\n";
            break;
          case OpType::Cnot:
            out << "  CX q" << op.q0 << " q" << op.q1 << "\n";
            break;
          case OpType::LeakageIswap:
            out << "  LISWAP q" << op.q0 << " q" << op.q1 << "\n";
            break;
          case OpType::Measure:
          case OpType::MeasureX:
            out << "  " << (op.type == OpType::Measure ? "M" : "MX")
                << " q" << op.q0 << " stab=" << op.stab
                << " round=" << op.round
                << (op.finalData ? " final" : "")
                << (op.lrcData ? " lrc" : "") << "\n";
            break;
        }
    }
    return out.str();
}

} // namespace qec
