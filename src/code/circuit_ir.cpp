#include "code/circuit_ir.h"

#include <algorithm>

#include "base/logging.h"
#include "code/builder.h"
#include "code/ir_analysis.h"

namespace qec
{

namespace
{

/** Which pool ops are legal Readout measurement templates. */
inline bool
isMeasureOp(OpType type)
{
    return type == OpType::Measure || type == OpType::MeasureX;
}

void
appendGate(CircuitProgram &prog, const Op &op)
{
    prog.instrs.push_back(
        {IrOpcode::Gate, (int32_t)prog.pool.size(), -1});
    prog.pool.push_back(op);
}

void
appendReadout(CircuitProgram &prog, int stab, const Op &meas,
              const Op &reset)
{
    const int32_t mi = (int32_t)prog.pool.size();
    prog.pool.push_back(meas);
    prog.pool.push_back(reset);
    prog.instrs.push_back({IrOpcode::Readout, stab, mi});
}

/** The template for one tail kind, mirroring executeLrcTail's
 *  expansion op for op (the conditional ERASER+M suffix — MOV on
 *  non-squashed lanes, parity reset on squashed ones — listed
 *  unconditionally, as the superset static analysis reasons about).
 *  test_ir_analysis pins this against the engine's hardcoded
 *  expansion. */
IrTailTemplate
makeTailTemplate(IrTailKind kind)
{
    constexpr int D = kTailDataQubit, P = kTailParityQubit;
    IrTailTemplate tmpl;
    tmpl.kind = kind;
    if (kind == IrTailKind::SwapLrc) {
        tmpl.ops.push_back(makeOp(OpType::Cnot, D, P));
        tmpl.ops.push_back(makeOp(OpType::Cnot, P, D));
        tmpl.ops.push_back(makeOp(OpType::Cnot, D, P));
        Op meas = makeOp(OpType::Measure, D);
        meas.lrcData = true;
        tmpl.ops.push_back(meas);
        tmpl.ops.push_back(makeOp(OpType::Reset, D));
        tmpl.ops.push_back(makeOp(OpType::Cnot, P, D));
        tmpl.ops.push_back(makeOp(OpType::Cnot, D, P));
        tmpl.ops.push_back(makeOp(OpType::Reset, P));
    } else {
        tmpl.ops.push_back(makeOp(OpType::LeakageIswap, D, P));
        tmpl.ops.push_back(makeOp(OpType::Reset, P));
    }
    return tmpl;
}

} // namespace

bool
CircuitProgram::supportContains(int stab, int data) const
{
    if (stab < 0 || (size_t)stab + 1 >= supportOffset.size())
        return false;
    const int begin = supportOffset[stab];
    const int end = supportOffset[(size_t)stab + 1];
    return std::find(supportData.begin() + begin,
                     supportData.begin() + end,
                     data) != supportData.begin() + end;
}

Status
CircuitProgram::validate() const
{
    if (rounds < 1)
        return invalidArgument(
            "circuit program needs at least one round, got " +
            std::to_string(rounds));
    if (numQubits < 1 || numData < 1 || numData > numQubits ||
        numStabs < 0)
        return invalidArgument("circuit program has invalid qubit "
                               "dimensions");
    if (instrs.empty() || instrs.front().op != IrOpcode::RoundBegin)
        return invalidArgument(
            "circuit program must start with RoundBegin");
    if (instrs.front().a != rounds)
        return invalidArgument(
            "RoundBegin trip count disagrees with program rounds");
    if (bodyBegin != 1 || bodyEnd < bodyBegin ||
        bodyEnd >= instrs.size())
        return invalidArgument("round-body span is out of range");

    size_t round_ends = 0;
    std::vector<int32_t> slot_ids;
    for (size_t i = 1; i < instrs.size(); ++i) {
        const IrInst &inst = instrs[i];
        switch (inst.op) {
          case IrOpcode::RoundBegin:
            return invalidArgument("nested round loops are not "
                                   "supported (second RoundBegin)");
          case IrOpcode::RoundEnd:
            if (i != bodyEnd)
                return invalidArgument(
                    "RoundEnd does not match the recorded body span");
            ++round_ends;
            break;
          case IrOpcode::Gate: {
            if (inst.a < 0 || (size_t)inst.a >= pool.size())
                return invalidArgument(
                    "Gate references an op outside the pool");
            const Op &op = pool[inst.a];
            if (op.type != OpType::RoundStart) {
                if (op.q0 < 0 || op.q0 >= numQubits)
                    return invalidArgument(
                        "gate op references a dangling qubit index");
                if ((op.type == OpType::Cnot ||
                     op.type == OpType::LeakageIswap) &&
                    (op.q1 < 0 || op.q1 >= numQubits))
                    return invalidArgument(
                        "two-qubit op references a dangling qubit "
                        "index");
            }
            if (i > bodyEnd && !op.finalData)
                return invalidArgument(
                    "instructions after RoundEnd must be final "
                    "data measurements");
            break;
          }
          case IrOpcode::Readout: {
            if (i > bodyEnd)
                return invalidArgument(
                    "Readout instruction after the round body");
            if (inst.a < 0 || inst.a >= numStabs)
                return invalidArgument(
                    "Readout references a dangling stabilizer index");
            if (inst.b < 0 || (size_t)inst.b + 1 >= pool.size())
                return invalidArgument(
                    "Readout references ops outside the pool");
            const Op &meas = pool[inst.b];
            const Op &reset = pool[(size_t)inst.b + 1];
            if (!isMeasureOp(meas.type) || meas.stab != inst.a ||
                meas.q0 < 0 || meas.q0 >= numQubits)
                return invalidArgument(
                    "Readout measurement template is malformed");
            if (reset.type != OpType::Reset || reset.q0 != meas.q0)
                return invalidArgument(
                    "Readout must be followed by a reset of the "
                    "measured qubit");
            break;
          }
          case IrOpcode::LrcSlot:
            if (i > bodyEnd)
                return invalidArgument(
                    "LrcSlot instruction after the round body");
            if (inst.a < 0)
                return invalidArgument("LRC-slot id must be "
                                       "non-negative");
            if (std::find(slot_ids.begin(), slot_ids.end(), inst.a) !=
                slot_ids.end())
                return invalidArgument(
                    "duplicate LRC-slot id " + std::to_string(inst.a));
            slot_ids.push_back(inst.a);
            break;
        }
    }
    if (round_ends != 1)
        return invalidArgument(
            "round loop is unclosed (RoundBegin without RoundEnd)");

    if ((int)stabAncilla.size() != numStabs ||
        (int)detR0.size() != numStabs ||
        supportOffset.size() != (size_t)numStabs + 1)
        return invalidArgument(
            "per-stabilizer metadata does not match numStabs");
    for (int a : stabAncilla)
        if (a < 0 || a >= numQubits)
            return invalidArgument(
                "stabilizer ancilla index is dangling");
    for (int s = 0; s < numStabs; ++s)
        if (supportOffset[s] > supportOffset[(size_t)s + 1])
            return invalidArgument("support CSR is not monotone");
    if ((size_t)supportOffset[numStabs] != supportData.size())
        return invalidArgument("support CSR is truncated");
    for (int q : supportData)
        if (q < 0 || q >= numData)
            return invalidArgument(
                "stabilizer support references a dangling data qubit");

    const IrDetectorMap &map = detectors;
    if (map.numData != numData ||
        (int)map.stabColumn.size() != numStabs ||
        map.colSupportOffset.size() != (size_t)map.cols + 1)
        return invalidArgument("detector map shape is inconsistent");
    for (int col : map.stabColumn)
        if (col < -1 || col >= map.cols)
            return invalidArgument(
                "detector map references a dangling column");
    for (int c = 0; c < map.cols; ++c)
        if (map.colSupportOffset[c] > map.colSupportOffset[(size_t)c + 1])
            return invalidArgument(
                "detector column support CSR is not monotone");
    if (map.cols > 0 &&
        (size_t)map.colSupportOffset[map.cols] !=
            map.colSupportData.size())
        return invalidArgument("detector column support is truncated");
    for (int q : map.colSupportData)
        if (q < 0 || q >= numData)
            return invalidArgument(
                "detector column support references a dangling data "
                "qubit");
    for (int q : map.observable)
        if (q < 0 || q >= numData)
            return invalidArgument(
                "observable references a dangling data qubit");
    return okStatus();
}

Circuit
CircuitProgram::baseCircuit(int rounds_override) const
{
    const int total = rounds_override < 0 ? rounds : rounds_override;
    Circuit circuit;
    circuit.numQubits = numQubits;
    circuit.numRounds = total;
    circuit.basis = basis;
    for (int r = 0; r < total; ++r) {
        circuit.roundBegin.push_back(circuit.ops.size());
        for (size_t i = bodyBegin; i < bodyEnd; ++i) {
            const IrInst &inst = instrs[i];
            if (inst.op == IrOpcode::Gate) {
                Op op = pool[inst.a];
                if (op.type == OpType::RoundStart)
                    op.round = r;
                circuit.ops.push_back(op);
            } else if (inst.op == IrOpcode::Readout) {
                Op meas = pool[inst.b];
                meas.round = r;
                circuit.ops.push_back(meas);
                circuit.ops.push_back(pool[(size_t)inst.b + 1]);
            }
            // LrcSlot branches are empty in the base circuit.
        }
    }
    circuit.roundBegin.push_back(circuit.ops.size());
    for (size_t i = bodyEnd + 1; i < instrs.size(); ++i) {
        Op op = pool[instrs[i].a];
        op.round = total;
        circuit.ops.push_back(op);
    }
    return circuit;
}

CircuitProgram
CircuitCompiler::surfaceMemory(const RotatedSurfaceCode &code,
                               int rounds, Basis basis, IrTailKind tail)
{
    panicIf(rounds < 1, "memory program needs at least one round");

    CircuitProgram prog;
    prog.family = CircuitFamily::SurfaceMemory;
    prog.tail = tail;
    prog.basis = basis;
    prog.distance = code.distance();
    prog.rounds = rounds;
    prog.numQubits = code.numQubits();
    prog.numData = code.numData();
    prog.numStabs = code.numStabilizers();
    prog.maskReadoutOnLrc = tail == IrTailKind::SwapLrc;

    // The round body is the LRC-free schedule: its pre-readout prefix
    // becomes Gate instructions replayed verbatim every round (the
    // engine's gate/noise helpers ignore Op::round, so no restamping
    // is needed — exactly the hand-wired driver's replay), and its
    // readouts become per-round-stamped Readout instructions.
    const RoundSchedule plain = buildRoundSchedule(code, 0, {});
    prog.instrs.push_back({IrOpcode::RoundBegin, rounds, -1});
    prog.bodyBegin = prog.instrs.size();
    for (const Op &op : plain.ops) {
        if (op.type == OpType::Measure)
            break;
        appendGate(prog, op);
    }
    for (const auto &stab : code.stabilizers()) {
        Op meas = makeOp(OpType::Measure, stab.ancilla);
        meas.stab = stab.index;
        appendReadout(prog, stab.index, meas,
                      makeOp(OpType::Reset, stab.ancilla));
    }
    prog.instrs.push_back({IrOpcode::LrcSlot, 0, -1});
    prog.bodyEnd = prog.instrs.size();
    prog.instrs.push_back({IrOpcode::RoundEnd, -1, -1});
    for (const Op &op : buildFinalMeasurement(code, rounds, basis))
        appendGate(prog, op);

    const StabType primary = protectingStabType(basis);
    prog.stabAncilla.resize(prog.numStabs);
    prog.detR0.resize(prog.numStabs);
    prog.supportOffset.push_back(0);
    for (const auto &stab : code.stabilizers()) {
        prog.stabAncilla[stab.index] = stab.ancilla;
        prog.detR0[stab.index] = stab.type == primary ? 1 : 0;
        prog.supportData.insert(prog.supportData.end(),
                                stab.support.begin(),
                                stab.support.end());
        prog.supportOffset.push_back((int)prog.supportData.size());
    }

    IrDetectorMap &map = prog.detectors;
    map.cols = code.numBasisStabilizers(basis);
    map.numData = prog.numData;
    map.stabColumn.assign(prog.numStabs, -1);
    for (const auto &stab : code.stabilizers())
        if (stab.type == primary)
            map.stabColumn[stab.index] = stab.basisIndex;
    map.colSupportOffset.push_back(0);
    for (int stab_index : code.basisStabilizers(basis)) {
        const auto &support = code.stabilizer(stab_index).support;
        map.colSupportData.insert(map.colSupportData.end(),
                                  support.begin(), support.end());
        map.colSupportOffset.push_back((int)map.colSupportData.size());
    }
    map.observable = code.logicalSupport(basis);
    prog.tailTemplates.push_back(makeTailTemplate(tail));
    return prog;
}

CircuitProgram
CircuitCompiler::repetitionMemory(int distance, int rounds)
{
    panicIf(distance < 2, "repetition code needs distance >= 2");
    panicIf(rounds < 1, "memory program needs at least one round");

    CircuitProgram prog;
    prog.family = CircuitFamily::RepetitionMemory;
    prog.tail = IrTailKind::SwapLrc;
    prog.basis = Basis::Z;
    prog.distance = distance;
    prog.rounds = rounds;
    prog.numData = distance;
    prog.numStabs = distance - 1;
    prog.numQubits = 2 * distance - 1;
    prog.maskReadoutOnLrc = true;

    // One round: idle data noise, then the two CNOT layers of each ZZ
    // check (data -> ancilla, like the surface code's Z stabilizers),
    // then the ancilla readouts. Data qubit q sits at index q; check s
    // compares qubits s and s+1 through ancilla distance + s.
    const auto ancilla = [distance](int s) { return distance + s; };
    prog.instrs.push_back({IrOpcode::RoundBegin, rounds, -1});
    prog.bodyBegin = prog.instrs.size();
    Op start = makeOp(OpType::RoundStart, -1);
    start.round = 0;
    appendGate(prog, start);
    for (int q = 0; q < distance; ++q)
        appendGate(prog, makeOp(OpType::DataNoise, q));
    for (int layer = 0; layer < 2; ++layer)
        for (int s = 0; s < prog.numStabs; ++s)
            appendGate(prog,
                       makeOp(OpType::Cnot, s + layer, ancilla(s)));
    for (int s = 0; s < prog.numStabs; ++s) {
        Op meas = makeOp(OpType::Measure, ancilla(s));
        meas.stab = s;
        appendReadout(prog, s, meas,
                      makeOp(OpType::Reset, ancilla(s)));
    }
    prog.instrs.push_back({IrOpcode::LrcSlot, 0, -1});
    prog.bodyEnd = prog.instrs.size();
    prog.instrs.push_back({IrOpcode::RoundEnd, -1, -1});
    for (int q = 0; q < distance; ++q) {
        Op m = makeOp(OpType::Measure, q);
        m.round = rounds;
        m.finalData = true;
        appendGate(prog, m);
    }

    // Every ZZ check is deterministic from the |0..0> start, so round
    // 0 already raises detection events.
    prog.detR0.assign(prog.numStabs, 1);
    prog.supportOffset.push_back(0);
    for (int s = 0; s < prog.numStabs; ++s) {
        prog.stabAncilla.push_back(ancilla(s));
        prog.supportData.push_back(s);
        prog.supportData.push_back(s + 1);
        prog.supportOffset.push_back((int)prog.supportData.size());
    }

    IrDetectorMap &map = prog.detectors;
    map.cols = prog.numStabs;
    map.numData = prog.numData;
    map.colSupportOffset.push_back(0);
    for (int s = 0; s < prog.numStabs; ++s) {
        map.stabColumn.push_back(s);
        map.colSupportData.push_back(s);
        map.colSupportData.push_back(s + 1);
        map.colSupportOffset.push_back((int)map.colSupportData.size());
    }
    // Any single data qubit's final readout is a logical-Z
    // representative; qubit 0 matches the surface convention.
    map.observable = {0};
    prog.tailTemplates.push_back(
        makeTailTemplate(IrTailKind::SwapLrc));
    return prog;
}

StatusOr<CircuitProgram>
CircuitCompiler::surfaceMemoryChecked(const RotatedSurfaceCode &code,
                                      int rounds, Basis basis,
                                      IrTailKind tail)
{
    if (rounds < 1)
        return invalidArgument(
            "memory program needs at least one round, got " +
            std::to_string(rounds));
    CircuitProgram prog = surfaceMemory(code, rounds, basis, tail);
    Status st = IrAnalyzer::verify(prog);
    if (!st.isOk())
        return st;
    return prog;
}

StatusOr<CircuitProgram>
CircuitCompiler::repetitionMemoryChecked(int distance, int rounds)
{
    if (distance < 2)
        return invalidArgument(
            "repetition code needs distance >= 2, got " +
            std::to_string(distance));
    if (rounds < 1)
        return invalidArgument(
            "memory program needs at least one round, got " +
            std::to_string(rounds));
    CircuitProgram prog = repetitionMemory(distance, rounds);
    Status st = IrAnalyzer::verify(prog);
    if (!st.isOk())
        return st;
    return prog;
}

const char *
circuitFamilyName(CircuitFamily family)
{
    switch (family) {
      case CircuitFamily::SurfaceMemory: return "surface_memory";
      case CircuitFamily::RepetitionMemory: return "repetition_memory";
    }
    return "unknown";
}

} // namespace qec
