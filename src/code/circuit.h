/**
 * @file
 * Flat circuit intermediate representation executed by the frame
 * simulator and analyzed by the detector-model builder.
 *
 * Every noisy location is an explicit Op so that error enumeration can
 * name mechanisms by (op index, Pauli). Rounds are delimited with
 * RoundStart markers; measurement ops carry the stabilizer index and
 * round so outcomes can be mapped back to syndrome bits.
 */

#ifndef QEC_CODE_CIRCUIT_H
#define QEC_CODE_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "code/types.h"

namespace qec
{

/** Circuit operation kinds. */
enum class OpType : uint8_t
{
    RoundStart,   ///< Marker: begin syndrome extraction round `round`.
    DataNoise,    ///< Idling/depolarizing + leakage site on a data qubit.
    Reset,        ///< Reset q0 to |0> (clears leakage; init error).
    H,            ///< Hadamard on q0.
    Cnot,         ///< CNOT with control q0, target q1.
    Measure,      ///< Z-basis measurement of q0.
    MeasureX,     ///< X-basis measurement of q0 (memory-X finals).
    LeakageIswap, ///< DQLR leakage-moving op, data q0 -> parity q1.
};

/** One circuit operation. */
struct Op
{
    OpType type = OpType::RoundStart;
    int q0 = -1;
    int q1 = -1;
    /** Stabilizer index whose check this measurement reports (-1 for
     *  final transversal data measurements). */
    int stab = -1;
    /** Syndrome extraction round (RoundStart / Measure metadata). */
    int round = -1;
    /** True for the final transversal data-qubit measurements. */
    bool finalData = false;
    /** True when this measurement is a data qubit read out mid-round on
     *  behalf of an LRC (it still reports stabilizer `stab`). */
    bool lrcData = false;
};

/** A flat sequence of operations plus layout metadata. */
struct Circuit
{
    std::vector<Op> ops;
    int numQubits = 0;
    int numRounds = 0;
    Basis basis = Basis::Z;

    /** ops index at which each round begins (RoundStart position);
     *  entry [numRounds] marks the start of final data measurements. */
    std::vector<size_t> roundBegin;

    size_t size() const { return ops.size(); }

    /** Count ops of one type (used heavily by structural tests). */
    int countOps(OpType type) const;
    /** Count two-qubit operations (CNOTs). */
    int countTwoQubitOps() const;
    /** Number of measurement ops (records produced by a run). */
    int countMeasurements() const;
    /** Human-readable dump for debugging and golden tests. */
    std::string toString() const;
};

} // namespace qec

#endif // QEC_CODE_CIRCUIT_H
