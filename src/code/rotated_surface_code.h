/**
 * @file
 * Rotated surface code lattice (Fig. 2(a) of the ERASER paper).
 *
 * A distance-d rotated surface code uses d*d data qubits on an integer
 * grid and d*d-1 parity (ancilla) qubits on the dual plaquette grid.
 * Bulk plaquettes weigh four; boundary plaquettes weigh two. X-type
 * weight-2 stabilizers live on the top/bottom boundaries, Z-type on the
 * left/right boundaries.
 *
 * Qubit ids: data qubits are 0 .. d*d-1 in row-major order; ancillas are
 * d*d .. 2*d*d-2 in stabilizer-index order.
 */

#ifndef QEC_CODE_ROTATED_SURFACE_CODE_H
#define QEC_CODE_ROTATED_SURFACE_CODE_H

#include <array>
#include <vector>

#include "base/status.h"
#include "code/types.h"

namespace qec
{

/**
 * One stabilizer (parity check) of the code, with its CNOT layer
 * schedule. dataInLayer[l] holds the data qubit touched in CNOT layer l
 * (or -1 when a boundary stabilizer skips that layer). The layer orders
 * are the standard hook-error-safe patterns: X stabilizers sweep
 * NW, NE, SW, SE and Z stabilizers sweep NW, SW, NE, SE.
 */
struct Stabilizer
{
    int index = -1;             ///< Index within all stabilizers.
    StabType type = StabType::Z;
    int ancilla = -1;           ///< Qubit id of the parity qubit.
    int basisIndex = -1;        ///< Index within same-type stabilizers.
    double row = 0.0;           ///< Plaquette center row coordinate.
    double col = 0.0;           ///< Plaquette center column coordinate.
    std::array<int, 4> dataInLayer{-1, -1, -1, -1};
    std::vector<int> support;   ///< Data qubit ids (compact, sorted).
};

/**
 * Immutable description of a distance-d rotated surface code: qubits,
 * stabilizers, adjacency, CNOT schedule and logical operator supports.
 */
class RotatedSurfaceCode
{
  public:
    /**
     * Recoverable pre-check of a code distance (odd, >= 3). The
     * constructor panics on a distance this rejects, so callers that
     * take distances from users (SweepRunner, CLIs) validate first
     * and surface the Status instead of dying.
     */
    static Status validateDistance(int distance);

    /** Build the lattice. @param distance Odd code distance >= 3
     *  (precondition; see validateDistance). */
    explicit RotatedSurfaceCode(int distance);

    int distance() const { return distance_; }
    /** Total physical qubits, 2d^2-1. */
    int numQubits() const { return 2 * numData() - 1; }
    /** Data qubits, d^2. */
    int numData() const { return distance_ * distance_; }
    /** Parity qubits / stabilizers, d^2-1. */
    int numStabilizers() const { return numData() - 1; }
    int numZStabilizers() const { return (int)zStabs_.size(); }
    int numXStabilizers() const { return (int)xStabs_.size(); }
    /** Count of stabilizers whose type protects the given basis. */
    int
    numBasisStabilizers(Basis basis) const
    {
        return protectingStabType(basis) == StabType::Z
            ? numZStabilizers() : numXStabilizers();
    }

    bool isData(int qubit) const { return qubit < numData(); }
    int dataId(int row, int col) const { return row * distance_ + col; }
    int dataRow(int data) const { return data / distance_; }
    int dataCol(int data) const { return data % distance_; }

    const std::vector<Stabilizer> &
    stabilizers() const
    {
        return stabs_;
    }
    const Stabilizer & stabilizer(int idx) const { return stabs_[idx]; }
    /** Stabilizer index owning the given ancilla qubit. */
    int stabilizerOfAncilla(int ancilla) const;

    /** Indices of stabilizers adjacent to a data qubit (2..4 entries). */
    const std::vector<int> &
    stabilizersOfData(int data) const
    {
        return stabsOfData_[data];
    }

    /** Stabilizer indices of each type, in basisIndex order. */
    const std::vector<int> & zStabilizers() const { return zStabs_; }
    const std::vector<int> & xStabilizers() const { return xStabs_; }
    /** Stabilizer indices protecting a memory basis. */
    const std::vector<int> &
    basisStabilizers(Basis basis) const
    {
        return protectingStabType(basis) == StabType::Z ? zStabs_
                                                        : xStabs_;
    }

    /** Data qubits of the logical Z operator (top row). */
    const std::vector<int> &
    logicalZSupport() const
    {
        return logicalZ_;
    }
    /** Data qubits of the logical X operator (left column). */
    const std::vector<int> &
    logicalXSupport() const
    {
        return logicalX_;
    }
    /** Logical operator measured by a memory experiment. */
    const std::vector<int> &
    logicalSupport(Basis basis) const
    {
        return basis == Basis::Z ? logicalZ_ : logicalX_;
    }

  private:
    int distance_;
    std::vector<Stabilizer> stabs_;
    std::vector<int> zStabs_;
    std::vector<int> xStabs_;
    std::vector<std::vector<int>> stabsOfData_;
    std::vector<int> ancillaToStab_;
    std::vector<int> logicalZ_;
    std::vector<int> logicalX_;
};

} // namespace qec

#endif // QEC_CODE_ROTATED_SURFACE_CODE_H
