#include "density/channels.h"

#include <cmath>

namespace qec
{

namespace
{

constexpr int kDim2 = kLevels * kLevels;

bool
isLeaked(int level)
{
    return level >= 2;
}

} // namespace

Matrix
cnotQuquart()
{
    Matrix u(kDim2 * kDim2, Cplx(0.0));
    for (int a = 0; a < kLevels; ++a) {
        for (int b = 0; b < kLevels; ++b) {
            const int in = a * kLevels + b;
            int out = in;
            if (!isLeaked(a) && !isLeaked(b))
                out = a * kLevels + (a == 1 ? (b ^ 1) : b);
            u[(size_t)out * kDim2 + in] = 1.0;
        }
    }
    return u;
}

Matrix
leakTransportUnitary()
{
    Matrix u(kDim2 * kDim2, Cplx(0.0));
    for (int a = 0; a < kLevels; ++a) {
        for (int b = 0; b < kLevels; ++b) {
            const int in = a * kLevels + b;
            int out = in;
            if (isLeaked(a) != isLeaked(b))
                out = b * kLevels + a;
            u[(size_t)out * kDim2 + in] = 1.0;
        }
    }
    return u;
}

std::vector<Matrix>
leakTransportChannel(double p)
{
    const double amp_keep = std::sqrt(1.0 - p);
    const double amp_swap = std::sqrt(p);
    Matrix keep = identityMatrix(kDim2);
    for (auto &v : keep)
        v *= amp_keep;
    Matrix swap = leakTransportUnitary();
    for (auto &v : swap)
        v *= amp_swap;
    return {keep, swap};
}

Matrix
rxConditioned(double theta)
{
    const double c = std::cos(theta / 2.0);
    const Cplx ms(0.0, -std::sin(theta / 2.0));

    Matrix u(kDim2 * kDim2, Cplx(0.0));
    auto idx = [](int row, int col) {
        return (size_t)row * kDim2 + col;
    };
    for (int a = 0; a < kLevels; ++a) {
        for (int b = 0; b < kLevels; ++b) {
            const int in = a * kLevels + b;
            if (isLeaked(a) && !isLeaked(b)) {
                // RX within b's computational subspace.
                const int flip = a * kLevels + (b ^ 1);
                u[idx(in, in)] += c;
                u[idx(flip, in)] += ms;
            } else if (!isLeaked(a) && isLeaked(b)) {
                const int flip = (a ^ 1) * kLevels + b;
                u[idx(in, in)] += c;
                u[idx(flip, in)] += ms;
            } else {
                u[idx(in, in)] = 1.0;
            }
        }
    }
    return u;
}

std::vector<Matrix>
leakInjectChannel(double p)
{
    // K0 damps |1>; K1 moves the lost amplitude to |2>.
    Matrix k0 = identityMatrix(kLevels);
    k0[1 * kLevels + 1] = std::sqrt(1.0 - p);
    Matrix k1(kLevels * kLevels, Cplx(0.0));
    k1[2 * kLevels + 1] = std::sqrt(p);
    return {k0, k1};
}

std::vector<Matrix>
seepChannel(double p)
{
    Matrix k0 = identityMatrix(kLevels);
    k0[2 * kLevels + 2] = std::sqrt(1.0 - p);
    Matrix k1(kLevels * kLevels, Cplx(0.0));
    k1[1 * kLevels + 2] = std::sqrt(p);
    return {k0, k1};
}

} // namespace qec
