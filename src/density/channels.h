/**
 * @file
 * Ququart gate unitaries and noise channels for the Section 3.3
 * characterization study (Fig. 7(b)): CNOTs act only within the
 * computational subspace; each CNOT is followed by a leakage-transport
 * channel, a leakage-conditioned RX(0.65*pi) error, and a leakage
 * injection channel.
 */

#ifndef QEC_DENSITY_CHANNELS_H
#define QEC_DENSITY_CHANNELS_H

#include <vector>

#include "density/density_matrix.h"

namespace qec
{

/** 16x16 CNOT embedded in two ququarts: acts as CNOT on |a,b> with
 *  a, b in {0,1}, identity if either operand is leaked. */
Matrix cnotQuquart();

/** 16x16 permutation unitary exchanging leakage between the operands:
 *  |a,b> <-> |b,a> when exactly one of a, b is leaked (the transport
 *  "swap"); identity otherwise. */
Matrix leakTransportUnitary();

/** Kraus channel applying leakTransportUnitary with probability p. */
std::vector<Matrix> leakTransportChannel(double p);

/**
 * 16x16 leakage-conditioned RX error: applies RX(theta) within the
 * {|0>,|1>} subspace of the unleaked operand when the other operand is
 * leaked (both directions; identity when neither/both are leaked).
 */
Matrix rxConditioned(double theta);

/** 4x4 leakage injection channel: |1> heats to |2> with prob p. */
std::vector<Matrix> leakInjectChannel(double p);

/** 4x4 seepage channel: |2> decays to |1> with prob p. */
std::vector<Matrix> seepChannel(double p);

} // namespace qec

#endif // QEC_DENSITY_CHANNELS_H
