#include "density/density_matrix.h"

#include <cmath>

#include "base/logging.h"

namespace qec
{

Matrix
identityMatrix(int n)
{
    Matrix m(n * n, Cplx(0.0));
    for (int i = 0; i < n; ++i)
        m[i * n + i] = 1.0;
    return m;
}

bool
isTracePreserving(const std::vector<Matrix> &ks, int n, double tol)
{
    // sum_k K^dagger K == I.
    Matrix acc(n * n, Cplx(0.0));
    for (const auto &k : ks) {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                Cplx s(0.0);
                for (int l = 0; l < n; ++l)
                    s += std::conj(k[l * n + i]) * k[l * n + j];
                acc[i * n + j] += s;
            }
        }
    }
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const Cplx want = (i == j) ? 1.0 : 0.0;
            if (std::abs(acc[i * n + j] - want) > tol)
                return false;
        }
    }
    return true;
}

DensityMatrix::DensityMatrix(const std::vector<int> &levels)
    : numQudits_((int)levels.size())
{
    dim_ = 1;
    for (int q = 0; q < numQudits_; ++q)
        dim_ *= kLevels;
    rho_.assign((size_t)dim_ * dim_, Cplx(0.0));

    int index = 0;
    for (int q = 0; q < numQudits_; ++q) {
        panicIf(levels[q] < 0 || levels[q] >= kLevels,
                "initial level out of range");
        index = index * kLevels + levels[q];
    }
    rho_[(size_t)index * dim_ + index] = 1.0;
}

void
DensityMatrix::applyKrausGeneric(const std::vector<int> &targets,
                                 const std::vector<Matrix> &ks)
{
    const int t_count = (int)targets.size();
    const int m = t_count == 1 ? kLevels : kLevels * kLevels;

    // Stride of each target qudit (big-endian digit order).
    std::vector<int> strides(t_count);
    for (int i = 0; i < t_count; ++i) {
        int s = 1;
        for (int q = targets[i] + 1; q < numQudits_; ++q)
            s *= kLevels;
        strides[i] = s;
    }
    // Offset of each local basis state.
    std::vector<int> offset(m);
    for (int t = 0; t < m; ++t) {
        if (t_count == 1) {
            offset[t] = t * strides[0];
        } else {
            offset[t] = (t / kLevels) * strides[0] +
                        (t % kLevels) * strides[1];
        }
    }
    // All global indices whose target digits are zero.
    std::vector<int> rest;
    for (int i = 0; i < dim_; ++i) {
        bool zero = true;
        for (int t = 0; t < t_count; ++t) {
            if ((i / strides[t]) % kLevels != 0) {
                zero = false;
                break;
            }
        }
        if (zero)
            rest.push_back(i);
    }

    scratch_.assign((size_t)dim_ * dim_, Cplx(0.0));
    std::vector<Cplx> block((size_t)m * m);
    std::vector<Cplx> tmp((size_t)m * m);
    std::vector<Cplx> out((size_t)m * m);

    for (int rr : rest) {
        for (int rc : rest) {
            for (int tr = 0; tr < m; ++tr) {
                const size_t row = (size_t)(rr + offset[tr]) * dim_;
                for (int tc = 0; tc < m; ++tc)
                    block[(size_t)tr * m + tc] =
                        rho_[row + rc + offset[tc]];
            }
            std::fill(out.begin(), out.end(), Cplx(0.0));
            for (const auto &k : ks) {
                // tmp = K * block
                for (int i = 0; i < m; ++i) {
                    for (int j = 0; j < m; ++j) {
                        Cplx s(0.0);
                        for (int l = 0; l < m; ++l)
                            s += k[(size_t)i * m + l] *
                                 block[(size_t)l * m + j];
                        tmp[(size_t)i * m + j] = s;
                    }
                }
                // out += tmp * K^dagger
                for (int i = 0; i < m; ++i) {
                    for (int j = 0; j < m; ++j) {
                        Cplx s(0.0);
                        for (int l = 0; l < m; ++l)
                            s += tmp[(size_t)i * m + l] *
                                 std::conj(k[(size_t)j * m + l]);
                        out[(size_t)i * m + j] += s;
                    }
                }
            }
            for (int tr = 0; tr < m; ++tr) {
                const size_t row = (size_t)(rr + offset[tr]) * dim_;
                for (int tc = 0; tc < m; ++tc)
                    scratch_[row + rc + offset[tc]] =
                        out[(size_t)tr * m + tc];
            }
        }
    }
    rho_.swap(scratch_);
}

void
DensityMatrix::applyUnitary1(int q, const Matrix &u)
{
    applyKrausGeneric({q}, {u});
}

void
DensityMatrix::applyUnitary2(int a, int b, const Matrix &u)
{
    applyKrausGeneric({a, b}, {u});
}

void
DensityMatrix::applyKraus1(int q, const std::vector<Matrix> &ks)
{
    applyKrausGeneric({q}, ks);
}

void
DensityMatrix::applyKraus2(int a, int b, const std::vector<Matrix> &ks)
{
    applyKrausGeneric({a, b}, ks);
}

double
DensityMatrix::population(int q, int level) const
{
    int stride = 1;
    for (int i = q + 1; i < numQudits_; ++i)
        stride *= kLevels;
    double total = 0.0;
    for (int i = 0; i < dim_; ++i) {
        if ((i / stride) % kLevels == level)
            total += rho_[(size_t)i * dim_ + i].real();
    }
    return total;
}

double
DensityMatrix::trace() const
{
    double t = 0.0;
    for (int i = 0; i < dim_; ++i)
        t += rho_[(size_t)i * dim_ + i].real();
    return t;
}

double
DensityMatrix::hermiticityError() const
{
    double worst = 0.0;
    for (int i = 0; i < dim_; ++i) {
        for (int j = i; j < dim_; ++j) {
            const Cplx delta = rho_[(size_t)i * dim_ + j] -
                               std::conj(rho_[(size_t)j * dim_ + i]);
            worst = std::max(worst, std::abs(delta));
        }
    }
    return worst;
}

} // namespace qec
