/**
 * @file
 * Dense density-matrix simulator for small registers of ququarts
 * (4-level systems), used to reproduce the paper's characterization of
 * leakage spread across a Z stabilizer (Section 3.3, Figs. 7-8).
 *
 * States |0>, |1> are computational; |2>, |3> are the leaked manifold
 * |L> (Google Sycamore's leakage interacts with |3>, hence ququarts).
 */

#ifndef QEC_DENSITY_DENSITY_MATRIX_H
#define QEC_DENSITY_DENSITY_MATRIX_H

#include <complex>
#include <vector>

namespace qec
{

/** Number of levels per qudit in this module. */
constexpr int kLevels = 4;

using Cplx = std::complex<double>;
/** Dense matrix in row-major order. */
using Matrix = std::vector<Cplx>;

/**
 * Density matrix over n ququarts (dimension 4^n). Provides one- and
 * two-qudit unitary application, Kraus channels and population
 * queries. Intended for n <= 5 (the stabilizer study).
 */
class DensityMatrix
{
  public:
    /** Initialize to the product state |levels[0], levels[1], ...>. */
    explicit DensityMatrix(const std::vector<int> &levels);

    int numQudits() const { return numQudits_; }
    int dim() const { return dim_; }

    /** Apply a kLevels x kLevels unitary to qudit q. */
    void applyUnitary1(int q, const Matrix &u);

    /** Apply a 16x16 unitary to qudits (a, b); index convention:
     *  basis |ia, ib> maps to row ia*kLevels+ib. */
    void applyUnitary2(int a, int b, const Matrix &u);

    /** Apply a Kraus channel on qudit q (each kLevels x kLevels). */
    void applyKraus1(int q, const std::vector<Matrix> &ks);

    /** Apply a Kraus channel on qudits (a, b) (each 16x16). */
    void applyKraus2(int a, int b, const std::vector<Matrix> &ks);

    /** Population of level `level` on qudit q. */
    double population(int q, int level) const;

    /** Probability qudit q is leaked (levels 2 or 3). */
    double
    leakProbability(int q) const
    {
        return population(q, 2) + population(q, 3);
    }

    /**
     * Probability a two-level discriminator reports `0` for qudit q:
     * the |0> population plus half of the leaked population (a leaked
     * state reads out randomly).
     */
    double
    probReportZero(int q) const
    {
        return population(q, 0) + 0.5 * leakProbability(q);
    }

    double trace() const;

    /** Largest absolute deviation from Hermitian symmetry (tests). */
    double hermiticityError() const;

  private:
    /** rho' = sum_k K rho K^dagger with K embedded on target qudits.
     *  `targets` has one or two entries. */
    void applyKrausGeneric(const std::vector<int> &targets,
                           const std::vector<Matrix> &ks);

    int numQudits_;
    int dim_;
    Matrix rho_;
    Matrix scratch_;
};

/** Identity matrix of size n x n. */
Matrix identityMatrix(int n);

/** Verify sum_k K^dagger K = I within tolerance (test helper). */
bool isTracePreserving(const std::vector<Matrix> &ks, int n,
                       double tol = 1e-9);

} // namespace qec

#endif // QEC_DENSITY_DENSITY_MATRIX_H
