#include "density/stabilizer_study.h"

#include "density/channels.h"

namespace qec
{

namespace
{

/** Qudit indices: data q0..q3 are 0..3, parity P is 4. */
constexpr int kParity = 4;

class Study
{
  public:
    explicit Study(const StabilizerStudyConfig &config)
        : config_(config), rho_({2, 0, 0, 0, 0}),
          cnot_(cnotQuquart()),
          transport_(leakTransportChannel(config.pTransport)),
          rx_(rxConditioned(config.theta)),
          inject_(leakInjectChannel(config.pInject))
    {
        snapshot("initial", "");
    }

    /** A noisy CNOT per Fig. 7(b): gate, transport, conditioned RX,
     *  injection on both operands. */
    void
    noisyCnot(int control, int target, const std::string &label,
              const std::string &marker = "")
    {
        rho_.applyUnitary2(control, target, cnot_);
        rho_.applyKraus2(control, target, transport_);
        rho_.applyUnitary2(control, target, rx_);
        rho_.applyKraus1(control, inject_);
        rho_.applyKraus1(target, inject_);
        snapshot(label, marker);
    }

    /** Project-and-reset a qudit to |0> (measure+reset of the LRC'd
     *  data qubit; we do not record the outcome, only the state). */
    void
    reset(int q, const std::string &label)
    {
        std::vector<Matrix> ks;
        for (int level = 0; level < kLevels; ++level) {
            Matrix k(kLevels * kLevels, Cplx(0.0));
            k[0 * kLevels + level] = 1.0;
            ks.push_back(k);
        }
        rho_.applyKraus1(q, ks);
        snapshot(label, "");
    }

    void
    snapshot(const std::string &label, const std::string &marker)
    {
        StudyStep step;
        step.label = label;
        step.marker = marker;
        step.leakParity = rho_.leakProbability(kParity);
        for (int q = 0; q < 4; ++q)
            step.leakData[q] = rho_.leakProbability(q);
        step.reportZeroParity = rho_.probReportZero(kParity);
        steps_.push_back(step);
    }

    std::vector<StudyStep> take() { return std::move(steps_); }

  private:
    StabilizerStudyConfig config_;
    DensityMatrix rho_;
    Matrix cnot_;
    std::vector<Matrix> transport_;
    Matrix rx_;
    std::vector<Matrix> inject_;
    std::vector<StudyStep> steps_;
};

} // namespace

std::vector<StudyStep>
runStabilizerLeakageStudy(const StabilizerStudyConfig &config)
{
    Study study(config);

    // Round 1 (LRC round). q0 — the leaked qubit — interacts with P
    // in CNOT #4 (point B: P is first disturbed), then the LRC SWAP
    // moves states between q0 and P (point A: leakage has transported
    // onto P).
    study.noisyCnot(1, kParity, "R1 CNOT q1->P");
    study.noisyCnot(2, kParity, "R1 CNOT q2->P");
    study.noisyCnot(3, kParity, "R1 CNOT q3->P");
    study.noisyCnot(0, kParity, "R1 CNOT q0->P", "B");
    study.noisyCnot(0, kParity, "R1 SWAP cx1");
    study.noisyCnot(kParity, 0, "R1 SWAP cx2");
    study.noisyCnot(0, kParity, "R1 SWAP cx3", "A");
    study.reset(0, "R1 MR q0");
    study.noisyCnot(kParity, 0, "R1 MOV cx1");
    study.noisyCnot(0, kParity, "R1 MOV cx2");

    // Round 2 (no LRC): the leaked parity qubit spreads errors onto
    // the data qubits; point C is the state P is measured in.
    study.noisyCnot(1, kParity, "R2 CNOT q1->P");
    study.noisyCnot(2, kParity, "R2 CNOT q2->P");
    study.noisyCnot(3, kParity, "R2 CNOT q3->P");
    study.noisyCnot(0, kParity, "R2 CNOT q0->P", "C");

    return study.take();
}

} // namespace qec
