/**
 * @file
 * The Section 3.3 density-matrix experiment (Figs. 7-8): a single Z
 * stabilizer (four data ququarts q0..q3 and parity qudit P), with q0
 * initialized leaked in |2>, evolved through an LRC round followed by
 * a plain round. Records, after every step, each qubit's leakage
 * probability and the probability that measuring P reports the
 * correct (0) outcome.
 */

#ifndef QEC_DENSITY_STABILIZER_STUDY_H
#define QEC_DENSITY_STABILIZER_STUDY_H

#include <string>
#include <vector>

#include "density/density_matrix.h"

namespace qec
{

/** Parameters of the study (defaults follow the paper). */
struct StabilizerStudyConfig
{
    /** Leakage-conditioned rotation angle measured on Sycamore. */
    double theta = 0.65 * 3.14159265358979323846;
    /** Leakage transport probability per CNOT. */
    double pTransport = 0.1;
    /** Leakage injection probability per CNOT operand (0.1 * p). */
    double pInject = 1e-4;
};

/** Snapshot after one circuit step. */
struct StudyStep
{
    std::string label;        ///< e.g. "R1 CNOT q0->P" or "R1 SWAP 3".
    double leakParity = 0.0;  ///< P's leakage probability.
    double leakData[4] = {0.0, 0.0, 0.0, 0.0};
    /** Probability a two-level readout of P reports 0 (the correct
     *  outcome; 0.5 means the check is fully randomized). */
    double reportZeroParity = 0.5;
    /** Named point of interest from Fig. 8 ("A", "B", "C") if any. */
    std::string marker;
};

/** Run the study; returns one snapshot per step (plus the initial
 *  state as step 0). */
std::vector<StudyStep> runStabilizerLeakageStudy(
    const StabilizerStudyConfig &config = {});

} // namespace qec

#endif // QEC_DENSITY_STABILIZER_STUDY_H
